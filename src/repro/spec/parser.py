"""Lexer and parser for MiniPVS theories.

Syntax sketch (keywords are upper-case; identifiers are case-sensitive)::

    THEORY AES
      TYPE Byte = NAT UPTO 255
      TYPE State = ARRAY 16 OF Byte
      CONST Sbox : ARRAY 256 OF Byte = [99, 124, ...]
      FUN XTime (B : Byte) : Byte =
          IF B * 2 <= 255 THEN B * 2 ELSE XOR (B * 2 - 256, 27) ENDIF
      REC FUN Acc (N : NAT) : NAT MEASURE N =
          IF N = 0 THEN 0 ELSE Acc (N - 1) + 1 ENDIF
    END AES

Builtins applied like functions: ``XOR``, ``BITAND``, ``BITOR``, ``SHL``,
``SHR``.  Boolean connectives ``AND``/``OR``/``NOT`` are operators.
"""

from __future__ import annotations

from typing import List, Tuple

from . import ast as s

__all__ = ["parse_theory", "parse_spec_expression", "SpecParseError"]

_KEYWORDS = frozenset(
    """THEORY END TYPE CONST FUN REC MEASURE NAT BOOL UPTO ARRAY OF IF THEN
    ELSE ENDIF LET IN BUILD TRUE FALSE AND OR NOT DIV MOD XOR""".split())

_SYMBOLS = ["<=", ">=", "/=", "=", "<", ">", "(", ")", "[", "]", ",", ":",
            ".", "+", "-", "*"]

_REL_OPS = {"=", "/=", "<", "<=", ">", ">="}

_BUILTIN_FUNCTIONS = frozenset(["XOR", "BITAND", "BITOR", "SHL", "SHR"])


class SpecParseError(Exception):
    def __init__(self, message, line=None):
        if line is not None:
            message = f"line {line}: {message}"
        super().__init__(message)


def _tokenize(source: str):
    tokens = []
    i, line, n = 0, 1, len(source)
    while i < n:
        ch = source[i]
        if ch == "\n":
            line += 1
            i += 1
            continue
        if ch in " \t\r":
            i += 1
            continue
        if source.startswith("--", i):
            while i < n and source[i] != "\n":
                i += 1
            continue
        if ch.isalpha() or ch == "_":
            start = i
            while i < n and (source[i].isalnum() or source[i] == "_"):
                i += 1
            word = source[start:i]
            if word in _KEYWORDS and word not in _BUILTIN_FUNCTIONS:
                tokens.append(("kw", word, line))
            elif word in _BUILTIN_FUNCTIONS:
                tokens.append(("id", word, line))
            else:
                tokens.append(("id", word, line))
            continue
        if ch.isdigit():
            start = i
            while i < n and (source[i].isdigit() or source[i] == "_"):
                i += 1
            if i < n and source[i] == "#":  # based literal 16#FF#
                base = int(source[start:i])
                i += 1
                dstart = i
                while i < n and (source[i].isalnum() or source[i] == "_"):
                    i += 1
                if i >= n or source[i] != "#":
                    raise SpecParseError("unterminated based literal", line)
                value = int(source[dstart:i].replace("_", ""), base)
                i += 1
                tokens.append(("int", value, line))
            else:
                tokens.append(("int", int(source[start:i].replace("_", "")),
                               line))
            continue
        for sym in _SYMBOLS:
            if source.startswith(sym, i):
                tokens.append(("sym", sym, line))
                i += len(sym)
                break
        else:
            raise SpecParseError(f"unexpected character {ch!r}", line)
    tokens.append(("eof", None, line))
    return tokens


class _P:
    def __init__(self, tokens):
        self.toks = tokens
        self.pos = 0

    def peek(self, ahead=0):
        return self.toks[min(self.pos + ahead, len(self.toks) - 1)]

    def advance(self):
        tok = self.toks[self.pos]
        if tok[0] != "eof":
            self.pos += 1
        return tok

    def check(self, kind, value=None):
        tok = self.peek()
        return tok[0] == kind and (value is None or tok[1] == value)

    def accept(self, kind, value=None):
        if self.check(kind, value):
            return self.advance()
        return None

    def expect(self, kind, value=None):
        tok = self.peek()
        if not (tok[0] == kind and (value is None or tok[1] == value)):
            want = value if value is not None else kind
            raise SpecParseError(f"expected {want!r}, found {tok[1]!r}",
                                 tok[2])
        return self.advance()

    # -- theory ---------------------------------------------------------

    def theory(self) -> s.Theory:
        self.expect("kw", "THEORY")
        name = self.expect("id")[1]
        decls = []
        while not self.check("kw", "END"):
            decls.append(self.decl())
        self.expect("kw", "END")
        end_name = self.expect("id")[1]
        if end_name != name:
            raise SpecParseError(
                f"theory '{name}' ends with '{end_name}'", self.peek()[2])
        self.expect("eof")
        return s.Theory(name=name, decls=tuple(decls))

    def decl(self) -> s.SDecl:
        if self.accept("kw", "TYPE"):
            name = self.expect("id")[1]
            self.expect("sym", "=")
            return s.TypeDef(name=name, definition=self.type_expr())
        if self.accept("kw", "CONST"):
            name = self.expect("id")[1]
            self.expect("sym", ":")
            ctype = self.type_expr()
            self.expect("sym", "=")
            return s.ConstDef(name=name, type=ctype, value=self.expr())
        recursive = bool(self.accept("kw", "REC"))
        self.expect("kw", "FUN")
        name = self.expect("id")[1]
        self.expect("sym", "(")
        params: List[Tuple[str, s.SType]] = []
        while True:
            names = [self.expect("id")[1]]
            while self.accept("sym", ","):
                names.append(self.expect("id")[1])
            self.expect("sym", ":")
            ptype = self.type_expr()
            for pname in names:
                params.append((pname, ptype))
            if not self.accept("sym", ","):
                break
        self.expect("sym", ")")
        self.expect("sym", ":")
        rtype = self.type_expr()
        measure = None
        if self.accept("kw", "MEASURE"):
            # Measures are numeric; parse below the relational level so the
            # following '=' starts the function body.
            measure = self.arith()
        self.expect("sym", "=")
        body = self.expr()
        return s.FunDef(name=name, params=tuple(params), return_type=rtype,
                        body=body, recursive=recursive, measure=measure)

    def type_expr(self) -> s.SType:
        if self.accept("kw", "NAT"):
            if self.accept("kw", "UPTO"):
                hi = self.expect("int")[1]
                return s.SubrangeType(hi=hi)
            return s.NatType()
        if self.accept("kw", "BOOL"):
            return s.BoolType()
        if self.accept("kw", "ARRAY"):
            size = self.expect("int")[1]
            self.expect("kw", "OF")
            return s.ArrayTypeS(size=size, elem=self.type_expr())
        name = self.expect("id")[1]
        return s.NamedType(name=name)

    # -- expressions ------------------------------------------------------

    def expr(self) -> s.SExpr:
        return self.or_expr()

    def or_expr(self) -> s.SExpr:
        left = self.and_expr()
        while self.accept("kw", "OR"):
            left = s.Bin(op="OR", left=left, right=self.and_expr())
        return left

    def and_expr(self) -> s.SExpr:
        left = self.not_expr()
        while self.accept("kw", "AND"):
            left = s.Bin(op="AND", left=left, right=self.not_expr())
        return left

    def not_expr(self) -> s.SExpr:
        if self.accept("kw", "NOT"):
            return s.Call(fn="NOT", args=(self.not_expr(),))
        return self.relation()

    def relation(self) -> s.SExpr:
        left = self.arith()
        tok = self.peek()
        if tok[0] == "sym" and tok[1] in _REL_OPS:
            op = self.advance()[1]
            return s.Bin(op=op, left=left, right=self.arith())
        return left

    def arith(self) -> s.SExpr:
        if self.check("sym", "-"):
            self.advance()
            left: s.SExpr = s.Bin(op="-", left=s.Num(value=0),
                                  right=self.term())
        else:
            left = self.term()
        while self.peek()[0] == "sym" and self.peek()[1] in ("+", "-"):
            op = self.advance()[1]
            left = s.Bin(op=op, left=left, right=self.term())
        return left

    def term(self) -> s.SExpr:
        left = self.postfix()
        while True:
            if self.check("sym", "*"):
                self.advance()
                op = "*"
            elif self.check("kw", "DIV"):
                self.advance()
                op = "DIV"
            elif self.check("kw", "MOD"):
                self.advance()
                op = "MOD"
            else:
                return left
            left = s.Bin(op=op, left=left, right=self.postfix())

    def postfix(self) -> s.SExpr:
        expr = self.primary()
        while True:
            if self.accept("sym", "["):
                index = self.expr()
                self.expect("sym", "]")
                expr = s.Index(array=expr, index=index)
            else:
                return expr

    def primary(self) -> s.SExpr:
        tok = self.peek()
        if tok[0] == "int":
            self.advance()
            return s.Num(value=tok[1])
        if self.accept("kw", "TRUE"):
            return s.BoolConst(value=True)
        if self.accept("kw", "FALSE"):
            return s.BoolConst(value=False)
        if self.accept("kw", "IF"):
            cond = self.expr()
            self.expect("kw", "THEN")
            then = self.expr()
            self.expect("kw", "ELSE")
            orelse = self.expr()
            self.expect("kw", "ENDIF")
            return s.IfExpr(cond=cond, then=then, orelse=orelse)
        if self.accept("kw", "LET"):
            var = self.expect("id")[1]
            self.expect("sym", "=")
            value = self.expr()
            self.expect("kw", "IN")
            return s.Let(var=var, value=value, body=self.expr())
        if self.accept("kw", "BUILD"):
            var = self.expect("id")[1]
            self.expect("sym", ":")
            size = self.expect("int")[1]
            self.expect("sym", ".")
            return s.Build(var=var, size=size, body=self.expr())
        if tok[0] == "id":
            name = self.advance()[1]
            if self.check("sym", "("):
                return self._call(name)
            return s.Var(name=name)
        if self.accept("sym", "("):
            inner = self.expr()
            self.expect("sym", ")")
            return inner
        if self.accept("sym", "["):
            values = [self._table_entry()]
            while self.accept("sym", ","):
                values.append(self._table_entry())
            self.expect("sym", "]")
            return s.TableLit(values=tuple(values))
        raise SpecParseError(f"unexpected token {tok[1]!r}", tok[2])

    def _table_entry(self) -> int:
        tok = self.expect("int")
        return tok[1]

    def _call(self, name: str) -> s.Call:
        self.expect("sym", "(")
        args = [self.expr()]
        while self.accept("sym", ","):
            args.append(self.expr())
        self.expect("sym", ")")
        return s.Call(fn=name, args=tuple(args))


def parse_theory(source: str) -> s.Theory:
    return _P(_tokenize(source)).theory()


def parse_spec_expression(source: str) -> s.SExpr:
    parser = _P(_tokenize(source))
    expr = parser.expr()
    parser.expect("eof")
    return expr
