"""Type checking and TCC generation for MiniPVS theories.

Typechecking a PVS theory produces *Type Correctness Conditions*: proof
obligations that values fit their subtypes, indices stay in bounds,
divisors are nonzero, and recursions terminate (measure decreasing).  The
paper reports these numbers directly ("147 TCCs, of which 79 were
discharged automatically ... the remaining 68 were all subsumed by the
proved ones", section 6.2.4).

``check_theory`` returns the TCC list; ``discharge_tccs`` runs the
automatic prover over them and reports proved / subsumed / unproved, where
*subsumed* means the TCC's obligation term is identical (hash-consed) to an
already-proved one -- duplicate obligations arising from repeated idioms,
exactly the phenomenon the paper describes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..logic import (
    Term, band, bor, conj, divi, eq, ge, gt, iff, implies, intc, ite, le,
    lt, modi, mul, ne, neg, add, sub, shl, shr, select, var, xor, apply,
    boolc,
)
from ..prover import AutoProver
from ..prover.ground import GroundEvaluator
from . import ast as s
from .eval import SpecEvalError, SpecEvaluator

__all__ = ["SpecTypeError", "TCC", "TCCReport", "SpecCheck", "check_theory",
           "discharge_tccs", "spec_expr_to_term", "SpecGround"]


class SpecTypeError(Exception):
    pass


@dataclass(frozen=True)
class TCC:
    kind: str          # 'subrange', 'index', 'division', 'termination'
    function: str
    term: Term


@dataclass
class TCCReport:
    total: int
    proved: int
    subsumed: int
    unproved: List[TCC] = field(default_factory=list)

    @property
    def all_discharged(self) -> bool:
        return not self.unproved


@dataclass
class SpecCheck:
    theory: s.Theory
    tccs: List[TCC]
    resolved_types: Dict[str, s.SType]


def _resolve(t: s.SType, types: Dict[str, s.SType]) -> s.SType:
    seen = set()
    while isinstance(t, s.NamedType):
        if t.name in seen:
            raise SpecTypeError(f"cyclic type '{t.name}'")
        seen.add(t.name)
        if t.name not in types:
            raise SpecTypeError(f"unknown type '{t.name}'")
        t = types[t.name]
    if isinstance(t, s.ArrayTypeS):
        return s.ArrayTypeS(size=t.size, elem=_resolve(t.elem, types))
    return t


def _static_bounds(t: s.SType) -> Optional[Tuple[int, int]]:
    if isinstance(t, s.SubrangeType):
        return (0, t.hi)
    if isinstance(t, s.NatType):
        return None  # only a lower bound; handled separately
    return None


class _Checker:
    def __init__(self, theory: s.Theory):
        self.theory = theory
        self.types: Dict[str, s.SType] = {}
        self.constants: Dict[str, s.SType] = {}
        self.functions: Dict[str, s.FunDef] = {}
        self.tccs: List[TCC] = []
        self._current: Optional[s.FunDef] = None
        self._bound_counter = 0

    # -- main ----------------------------------------------------------------

    def run(self) -> SpecCheck:
        for d in self.theory.decls:
            if isinstance(d, s.TypeDef):
                if d.name in self.types:
                    raise SpecTypeError(f"duplicate type '{d.name}'")
                self.types[d.name] = d.definition
        # Resolve all types now so cycles surface early.
        resolved = {name: _resolve(t, self.types)
                    for name, t in self.types.items()}
        for d in self.theory.decls:
            if isinstance(d, s.ConstDef):
                ctype = _resolve(d.type, self.types)
                self.constants[d.name] = ctype
                self._check_const(d, ctype)
            elif isinstance(d, s.FunDef):
                if d.name in self.functions:
                    raise SpecTypeError(f"duplicate function '{d.name}'")
                self.functions[d.name] = d
        for d in self.theory.functions():
            self._check_fun(d)
        return SpecCheck(theory=self.theory, tccs=self.tccs,
                         resolved_types=resolved)

    def _check_const(self, d: s.ConstDef, ctype: s.SType):
        if isinstance(ctype, s.ArrayTypeS):
            if not isinstance(d.value, s.TableLit):
                raise SpecTypeError(f"constant {d.name}: table expected")
            if len(d.value.values) != ctype.size:
                raise SpecTypeError(
                    f"constant {d.name}: {len(d.value.values)} entries for "
                    f"array of {ctype.size}")
            bounds = _static_bounds(ctype.elem)
            if bounds is not None:
                for v in d.value.values:
                    if not bounds[0] <= v <= bounds[1]:
                        raise SpecTypeError(
                            f"constant {d.name}: entry {v} outside "
                            f"{bounds[0]} .. {bounds[1]}")
        else:
            if not isinstance(d.value, s.Num):
                raise SpecTypeError(
                    f"constant {d.name}: scalar literal expected")

    def _check_fun(self, fn: s.FunDef):
        self._current = fn
        # Bound-variable freshening restarts per function so structurally
        # identical obligations from different functions share one term --
        # that sharing is what the paper's "subsumed by the proved ones"
        # TCC accounting reflects.
        self._bound_counter = 0
        env: Dict[str, s.SType] = {}
        for pname, ptype in fn.params:
            env[pname] = _resolve(ptype, self.types)
        state = {pname: var(pname) for pname, _ in fn.params}
        entry = self._param_facts(env)
        body_type, body_term = self._walk(
            fn.body, env, state, path=entry, fn=fn)
        rtype = _resolve(fn.return_type, self.types)
        self._subtype_tcc(body_term, body_type, rtype, entry, fn,
                          context="result")
        if fn.recursive and fn.measure is None:
            raise SpecTypeError(
                f"recursive function {fn.name} needs a MEASURE")
        self._current = None

    # -- expression walking (typing + TCC collection) -----------------------

    def _param_facts(self, env: Dict[str, s.SType]) -> Term:
        """Entry path condition: declared parameter bounds."""
        facts = []
        for pname, ptype in env.items():
            if isinstance(ptype, s.SubrangeType):
                facts.append(conj(le(intc(0), var(pname)),
                                  le(var(pname), intc(ptype.hi))))
            elif isinstance(ptype, s.NatType):
                facts.append(le(intc(0), var(pname)))
        return conj(*facts)

    def _fresh_bound(self, base: str) -> str:
        self._bound_counter += 1
        return f"{base}${self._bound_counter}"

    def _walk(self, e: s.SExpr, env: Dict[str, s.SType],
              state: Dict[str, Term], path: Term, fn: s.FunDef
              ) -> Tuple[s.SType, Term]:
        if isinstance(e, s.Num):
            if e.value < 0:
                raise SpecTypeError("negative literal in a NAT context")
            return s.SubrangeType(hi=e.value), intc(e.value)
        if isinstance(e, s.BoolConst):
            return s.BoolType(), boolc(e.value)
        if isinstance(e, s.Var):
            if e.name in env:
                return env[e.name], state.get(e.name, var(e.name))
            if e.name in self.constants:
                return self.constants[e.name], var(e.name)
            raise SpecTypeError(f"{fn.name}: unbound name '{e.name}'")
        if isinstance(e, s.Index):
            return self._walk_index(e, env, state, path, fn)
        if isinstance(e, s.IfExpr):
            ctype, cterm = self._walk(e.cond, env, state, path, fn)
            if not isinstance(ctype, s.BoolType):
                raise SpecTypeError(f"{fn.name}: IF condition not BOOL")
            ttype, tterm = self._walk(e.then, env, state,
                                      conj(path, cterm), fn)
            etype, eterm = self._walk(e.orelse, env, state,
                                      conj(path, neg(cterm)), fn)
            return _join(ttype, etype), ite(cterm, tterm, eterm)
        if isinstance(e, s.Let):
            vtype, vterm = self._walk(e.value, env, state, path, fn)
            inner_env = dict(env)
            inner_env[e.var] = vtype
            inner_state = dict(state)
            inner_state[e.var] = vterm
            return self._walk(e.body, inner_env, inner_state, path, fn)
        if isinstance(e, s.Build):
            bound = self._fresh_bound(e.var)
            inner_env = dict(env)
            inner_env[e.var] = s.SubrangeType(hi=e.size - 1)
            inner_state = dict(state)
            inner_state[e.var] = var(bound)
            guard = conj(le(intc(0), var(bound)),
                         le(var(bound), intc(e.size - 1)))
            etype, _ = self._walk(e.body, inner_env, inner_state,
                                  conj(path, guard), fn)
            # The built array itself is opaque to TCC terms.
            return s.ArrayTypeS(size=e.size, elem=etype), \
                var(f"#build{self._bound_counter}")
        if isinstance(e, s.TableLit):
            hi = max(e.values) if e.values else 0
            return s.ArrayTypeS(size=len(e.values),
                                elem=s.SubrangeType(hi=hi)), \
                var(f"#table{self._bound_counter}")
        if isinstance(e, s.ArrayLit):
            infos = [self._walk(item, env, state, path, fn)
                     for item in e.items]
            elem = infos[0][0]
            for itype, _ in infos[1:]:
                elem = _join(elem, itype)
            self._bound_counter += 1
            return s.ArrayTypeS(size=len(e.items), elem=elem), \
                var(f"#arraylit{self._bound_counter}")
        if isinstance(e, s.Bin):
            return self._walk_bin(e, env, state, path, fn)
        if isinstance(e, s.Call):
            return self._walk_call(e, env, state, path, fn)
        raise SpecTypeError(f"cannot check {type(e).__name__}")

    def _walk_index(self, e, env, state, path, fn):
        atype, aterm = self._walk(e.array, env, state, path, fn)
        itype, iterm = self._walk(e.index, env, state, path, fn)
        if not isinstance(atype, s.ArrayTypeS):
            raise SpecTypeError(f"{fn.name}: indexing a non-array")
        condition = conj(le(intc(0), iterm),
                         le(iterm, intc(atype.size - 1)))
        self._tcc("index", implies(path, condition), fn)
        if isinstance(e.array, s.Var) and e.array.name in self.constants:
            return atype.elem, apply(e.array.name, iterm)
        return atype.elem, select(aterm, iterm)

    def _walk_bin(self, e, env, state, path, fn):
        ltype, lterm = self._walk(e.left, env, state, path, fn)
        rtype, rterm = self._walk(e.right, env, state, path, fn)
        op = e.op
        if op in ("+", "-", "*", "DIV", "MOD"):
            if op == "+":
                term = add(lterm, rterm)
            elif op == "-":
                term = sub(lterm, rterm)
            elif op == "*":
                term = mul(lterm, rterm)
            elif op == "DIV":
                self._tcc("division", implies(path, ne(rterm, intc(0))), fn)
                term = divi(lterm, rterm)
            else:
                self._tcc("division", implies(path, ne(rterm, intc(0))), fn)
                term = modi(lterm, rterm)
            if op == "-":
                # NAT is closed under the other operators but not under
                # subtraction: emit a nonnegativity TCC unless static.
                self._tcc("subrange",
                          implies(path, le(intc(0), term)), fn)
            return _arith_result(ltype, rtype, op), term
        if op in ("=", "/="):
            term = eq(lterm, rterm)
            return s.BoolType(), term if op == "=" else neg(term)
        if op == "<":
            return s.BoolType(), lt(lterm, rterm)
        if op == "<=":
            return s.BoolType(), le(lterm, rterm)
        if op == ">":
            return s.BoolType(), gt(lterm, rterm)
        if op == ">=":
            return s.BoolType(), ge(lterm, rterm)
        if op in ("AND", "OR"):
            if not (isinstance(ltype, s.BoolType)
                    and isinstance(rtype, s.BoolType)):
                raise SpecTypeError(f"{fn.name}: '{op}' needs BOOL operands")
            combine = conj if op == "AND" else _disj
            return s.BoolType(), combine(lterm, rterm)
        raise SpecTypeError(f"unknown operator {op}")

    def _walk_call(self, e, env, state, path, fn):
        arg_info = [self._walk(a, env, state, path, fn) for a in e.args]
        terms = [t for _, t in arg_info]
        if e.fn in ("XOR", "BITAND", "BITOR"):
            op = {"XOR": xor, "BITAND": band, "BITOR": bor}[e.fn]
            hi = 0
            for atype, _ in arg_info:
                bounds = _static_bounds(atype)
                if bounds is None:
                    hi = None
                    break
                hi = max(hi, bounds[1])
            result = s.SubrangeType(hi=_mask(hi)) if hi is not None \
                else s.NatType()
            return result, op(*terms)
        if e.fn == "SHL":
            return s.NatType(), shl(terms[0], terms[1])
        if e.fn == "SHR":
            atype = arg_info[0][0]
            return (atype if isinstance(atype, s.SubrangeType)
                    else s.NatType()), shr(terms[0], terms[1])
        if e.fn == "NOT":
            return s.BoolType(), neg(terms[0])
        callee = self.functions.get(e.fn)
        if callee is None:
            raise SpecTypeError(f"{fn.name}: unknown function '{e.fn}'")
        if len(e.args) != len(callee.params):
            raise SpecTypeError(f"{fn.name}: call to {e.fn} arity mismatch")
        for (atype, aterm), (pname, ptype) in zip(arg_info, callee.params):
            target = _resolve(ptype, self.types)
            self._subtype_tcc(aterm, atype, target, path, fn,
                              context=f"argument {pname} of {e.fn}")
        if e.fn == fn.name:
            # Recursion: termination TCC (measure decreasing).
            if fn.measure is None:
                raise SpecTypeError(
                    f"{fn.name} is recursive; mark it REC with a MEASURE")
            mapping = {pname: aterm
                       for (pname, _), (_, aterm)
                       in zip(callee.params, arg_info)}
            _, m_now = self._walk(fn.measure, env, state, path, fn)
            m_next_type, m_next = self._walk(
                fn.measure,
                {pname: atype for (pname, _), (atype, _)
                 in zip(callee.params, arg_info)},
                mapping, path, fn)
            self._tcc("termination",
                      implies(path, lt(m_next, m_now)), fn)
        rtype = _resolve(callee.return_type, self.types)
        return rtype, apply(e.fn, *terms)

    # -- TCC helpers ----------------------------------------------------------

    def _tcc(self, kind: str, term: Term, fn: s.FunDef):
        if term.is_true:
            return
        self.tccs.append(TCC(kind=kind, function=fn.name, term=term))

    def _subtype_tcc(self, term: Term, actual: s.SType, target: s.SType,
                     path: Term, fn: s.FunDef, context: str):
        if isinstance(target, s.ArrayTypeS):
            if not isinstance(actual, s.ArrayTypeS) or \
                    actual.size != target.size:
                raise SpecTypeError(
                    f"{fn.name}: array type mismatch at {context}")
            # Element subtyping is enforced where elements are produced.
            return
        if isinstance(target, s.BoolType):
            if not isinstance(actual, s.BoolType):
                raise SpecTypeError(f"{fn.name}: BOOL expected at {context}")
            return
        target_bounds = _static_bounds(target)
        actual_bounds = _static_bounds(actual)
        if target_bounds is None:
            return  # NAT accepts any nat-sorted value
        if actual_bounds is not None and \
                actual_bounds[1] <= target_bounds[1]:
            return  # statically evident
        self._tcc("subrange",
                  implies(path, conj(le(intc(0), term),
                                     le(term, intc(target_bounds[1])))),
                  fn)


def _disj(a, b):
    from ..logic import disj
    return disj(a, b)


def _arith_result(ltype: s.SType, rtype: s.SType, op: str) -> s.SType:
    """Result type of a NAT arithmetic operator, tightened when static."""
    lb, rb = _static_bounds(ltype), _static_bounds(rtype)
    if op == "MOD" and rb is not None:
        return s.SubrangeType(hi=max(rb[1] - 1, 0))
    if lb is not None and rb is not None:
        if op == "+":
            return s.SubrangeType(hi=lb[1] + rb[1])
        if op == "*":
            return s.SubrangeType(hi=lb[1] * rb[1])
        if op in ("-", "DIV"):
            return s.SubrangeType(hi=lb[1])
    return s.NatType()


def _mask(n: int) -> int:
    if n <= 0:
        return 0
    return (1 << n.bit_length()) - 1


def _join(a: s.SType, b: s.SType) -> s.SType:
    if isinstance(a, s.SubrangeType) and isinstance(b, s.SubrangeType):
        return s.SubrangeType(hi=max(a.hi, b.hi))
    if isinstance(a, s.ArrayTypeS) and isinstance(b, s.ArrayTypeS) and \
            a.size == b.size:
        return s.ArrayTypeS(size=a.size, elem=_join(a.elem, b.elem))
    if type(a) is type(b):
        return a
    if isinstance(a, (s.NatType, s.SubrangeType)) and \
            isinstance(b, (s.NatType, s.SubrangeType)):
        return s.NatType()
    raise SpecTypeError(f"incompatible branch types {a!r} / {b!r}")


def check_theory(theory: s.Theory) -> SpecCheck:
    """Type-check ``theory``; returns the check result with its TCCs.
    Raises :class:`SpecTypeError` on outright type errors."""
    return _Checker(theory).run()


class SpecGround(GroundEvaluator):
    """Ground evaluation over a theory: tables and defined functions are
    evaluated through the spec evaluator."""

    def __init__(self, theory: s.Theory):
        super().__init__(None)
        self._spec = SpecEvaluator(theory)
        self._tables = {d.name: self._spec.constant(d.name)
                        for d in theory.constants()}
        self._theory = theory

    def _eval_apply(self, term, args):
        table = self._tables.get(term.value)
        if table is not None and len(args) == 1 and \
                isinstance(args[0], int) and 0 <= args[0] < len(table):
            return table[args[0]]
        try:
            return self._spec.call(term.value, args)
        except SpecEvalError:
            return None

    def evaluate(self, term):
        # Resolve bare table references too.
        if term.op == "var" and term.value in self._tables:
            return self._tables[term.value]
        return super().evaluate(term)


def spec_expr_to_term(theory: s.Theory, fn_name: str) -> Term:
    """The logic term of a function body with parameters as free variables
    (used by the implication prover for symbolic comparison)."""
    check = _Checker(theory)
    check.run()
    fn = check.functions[fn_name]
    env = {p: _resolve(t, check.types) for p, t in fn.params}
    state = {p: var(p) for p, _ in fn.params}
    _, term = check._walk(fn.body, env, state, conj(), fn)
    return term


class _SpecBoundHook:
    """Type-derived bounds for spec TCC terms: parameter scalars, array
    parameter elements, table entries, and function results."""

    def __init__(self, checker: "_Checker"):
        self._scalars: Dict[str, Optional[Tuple[int, int]]] = {}
        self._elems: Dict[str, Optional[Tuple[int, int]]] = {}
        for fn in checker.functions.values():
            for pname, ptype in fn.params:
                t = _resolve(ptype, checker.types)
                if isinstance(t, s.ArrayTypeS):
                    self._note(self._elems, pname, _static_bounds(t.elem))
                else:
                    self._note(self._scalars, pname, _static_bounds(t))
        self._returns: Dict[str, Optional[Tuple[int, int]]] = {}
        self._return_elems: Dict[str, Optional[Tuple[int, int]]] = {}
        for fn in checker.functions.values():
            rt = _resolve(fn.return_type, checker.types)
            if isinstance(rt, s.ArrayTypeS):
                self._return_elems[fn.name] = _static_bounds(rt.elem)
            else:
                self._returns[fn.name] = _static_bounds(rt)
        for name, ctype in checker.constants.items():
            if isinstance(ctype, s.ArrayTypeS):
                self._returns[name] = _static_bounds(ctype.elem)

    @staticmethod
    def _note(table, name, bounds):
        if name in table and table[name] != bounds:
            table[name] = None  # conflicting declarations: no information
        else:
            table[name] = bounds

    def __call__(self, term: Term) -> Optional[Tuple[int, int]]:
        if term.op == "var":
            base = str(term.value).split("$")[0]
            return self._scalars.get(base)
        if term.op == "apply":
            return self._returns.get(term.value)
        if term.op == "select":
            root = term.args[0]
            while root.op in ("store", "select"):
                root = root.args[0]
            if root.op == "var":
                base = str(root.value).split("$")[0]
                return self._elems.get(base)
            if term.args[0].op == "apply":
                return self._return_elems.get(term.args[0].value)
        return None


def discharge_tccs(theory: s.Theory, tccs: List[TCC]) -> TCCReport:
    """Run the automatic prover over the TCCs.  Duplicate obligations
    (same hash-consed term as an already-processed TCC) are counted as
    *subsumed*, mirroring the paper's TCC accounting."""
    check = _Checker(theory)
    check.run()
    extra = []
    from ..prover import Axiom
    for fn in theory.functions():
        rtype = _resolve(fn.return_type, check.types)
        bounds = _static_bounds(rtype)
        if bounds is None:
            continue
        params = tuple(p for p, _ in fn.params)
        call = apply(fn.name, *(var(p) for p in params))
        extra.append(Axiom(
            name=f"{fn.name}.range", bound=params,
            body=conj(le(intc(0), call), le(call, intc(bounds[1])))))
    prover = AutoProver(ground=SpecGround(theory), extra_axioms=extra,
                        hook=_SpecBoundHook(check))
    proved = 0
    subsumed = 0
    unproved: List[TCC] = []
    outcome_by_term: Dict[int, bool] = {}
    for tcc in tccs:
        known = outcome_by_term.get(tcc.term._id)
        if known is not None:
            subsumed += 1
            if not known:
                unproved.append(tcc)
            continue
        result = prover.prove(tcc.term)
        outcome_by_term[tcc.term._id] = result.proved
        if result.proved:
            proved += 1
        else:
            unproved.append(tcc)
    return TCCReport(total=len(tccs), proved=proved, subsumed=subsumed,
                     unproved=unproved)
