"""Pretty-printer for MiniPVS theories.

Defines the measured text of a specification -- the paper reports "the
extracted specification ... was 1685 lines long", so extracted theories are
printed with this printer and measured as text.
"""

from __future__ import annotations

from typing import List

from . import ast as s

__all__ = ["print_theory", "print_spec_expr", "spec_line_count"]

_IND = "  "


def _type(t: s.SType) -> str:
    if isinstance(t, s.NatType):
        return "NAT"
    if isinstance(t, s.BoolType):
        return "BOOL"
    if isinstance(t, s.SubrangeType):
        return f"NAT UPTO {t.hi}"
    if isinstance(t, s.ArrayTypeS):
        return f"ARRAY {t.size} OF {_type(t.elem)}"
    if isinstance(t, s.NamedType):
        return t.name
    raise TypeError(f"cannot print type {t!r}")


_LEVELS = {"OR": 1, "AND": 2, "=": 3, "/=": 3, "<": 3, "<=": 3, ">": 3,
           ">=": 3, "+": 4, "-": 4, "*": 5, "DIV": 5, "MOD": 5}


def _expr(e: s.SExpr, level: int = 0) -> str:
    if isinstance(e, s.Num):
        return str(e.value)
    if isinstance(e, s.BoolConst):
        return "TRUE" if e.value else "FALSE"
    if isinstance(e, s.Var):
        return e.name
    if isinstance(e, s.Call):
        args = ", ".join(_expr(a) for a in e.args)
        return f"{e.fn}({args})"
    if isinstance(e, s.Index):
        return f"{_expr(e.array, 6)}[{_expr(e.index)}]"
    if isinstance(e, s.IfExpr):
        text = (f"IF {_expr(e.cond)} THEN {_expr(e.then)} "
                f"ELSE {_expr(e.orelse)} ENDIF")
        return text
    if isinstance(e, s.Let):
        return f"LET {e.var} = {_expr(e.value)} IN {_expr(e.body)}"
    if isinstance(e, s.Build):
        return f"BUILD {e.var} : {e.size} . {_expr(e.body)}"
    if isinstance(e, s.Bin):
        my_level = _LEVELS[e.op]
        left = _expr(e.left, my_level)
        right = _expr(e.right, my_level + 1)
        text = f"{left} {e.op} {right}"
        if my_level < level:
            return f"({text})"
        return text
    if isinstance(e, s.TableLit):
        return "[" + ", ".join(str(v) for v in e.values) + "]"
    if isinstance(e, s.ArrayLit):
        return "{| " + ", ".join(_expr(item) for item in e.items) + " |}"
    raise TypeError(f"cannot print {e!r}")


def print_spec_expr(e: s.SExpr) -> str:
    return _expr(e)


def _wrap(text: str, indent: str, width: int = 78) -> List[str]:
    words = text.split(" ")
    lines = []
    current = indent
    for word in words:
        if len(current) + len(word) + 1 > width and current.strip():
            lines.append(current.rstrip())
            current = indent + _IND
        current += word + " "
    lines.append(current.rstrip())
    return lines


def print_theory(theory: s.Theory) -> str:
    lines = [f"THEORY {theory.name}"]
    for d in theory.decls:
        if isinstance(d, s.TypeDef):
            lines.append(f"{_IND}TYPE {d.name} = {_type(d.definition)}")
        elif isinstance(d, s.ConstDef):
            header = f"{_IND}CONST {d.name} : {_type(d.type)} ="
            value = _expr(d.value)
            if len(header) + len(value) + 1 <= 78:
                lines.append(f"{header} {value}")
            else:
                lines.append(header)
                lines.extend(_wrap(value, _IND * 2))
        elif isinstance(d, s.FunDef):
            params = ", ".join(f"{n} : {_type(t)}" for n, t in d.params)
            rec = "REC FUN" if d.recursive else "FUN"
            header = f"{_IND}{rec} {d.name} ({params}) : {_type(d.return_type)}"
            if d.measure is not None:
                header += f" MEASURE {_expr(d.measure)}"
            header += " ="
            lines.append(header)
            lines.extend(_wrap(_expr(d.body), _IND * 2))
        else:  # pragma: no cover - defensive
            raise TypeError(f"cannot print declaration {d!r}")
    lines.append(f"END {theory.name}")
    return "\n".join(lines) + "\n"


def spec_line_count(theory: s.Theory) -> int:
    """Non-blank line count of the printed theory."""
    return sum(1 for line in print_theory(theory).splitlines()
               if line.strip())
