"""Skeleton specification extraction (pre-annotation).

The paper extracts *skeleton* specifications after each transformation
block -- "these specifications were skeletons because they were obtained
before the code had been annotated" (6.2.2) -- solely to compare
architecture with the original specification (figure 2(f)).

A skeleton theory carries the mapped types, constant tables and function
*signatures* of a MiniAda package; function bodies are placeholders.
"""

from __future__ import annotations

from typing import List, Optional

from ..lang import TypedPackage, ast
from ..lang.types import (
    ArrayType, BooleanType, IntegerType, ModularType, RangeType, Type,
)
from ..spec import ast as s

__all__ = ["map_type", "extract_skeleton", "SkeletonError"]


class SkeletonError(Exception):
    pass


def map_type(t: Type) -> s.SType:
    """Direct mapping of MiniAda types to MiniPVS types."""
    if isinstance(t, ModularType):
        return s.SubrangeType(hi=t.modulus - 1)
    if isinstance(t, RangeType):
        if t.lo < 0:
            return s.NatType()  # MiniPVS is NAT-based
        return s.SubrangeType(hi=t.hi)
    if isinstance(t, BooleanType):
        return s.BoolType()
    if isinstance(t, IntegerType):
        return s.NatType()
    if isinstance(t, ArrayType):
        if t.lo != 0:
            raise SkeletonError(f"array {t.name} is not 0-based")
        return s.ArrayTypeS(size=t.length, elem=map_type(t.elem))
    raise SkeletonError(f"cannot map type {t!r}")


def param_bounds_from_pre(sp: ast.Subprogram):
    """Per-parameter (lo, hi) bounds stated by the precondition
    annotations (``--# pre P >= 0 and P <= 9;``).  Extraction *from
    annotated code* turns these into subrange types on the extracted
    function's parameters."""
    bounds = {}

    def note(name, lo=None, hi=None):
        old_lo, old_hi = bounds.get(name, (None, None))
        bounds[name] = (lo if lo is not None else old_lo,
                        hi if hi is not None else old_hi)

    def walk(expr):
        if isinstance(expr, ast.BinOp):
            if expr.op == "and":
                walk(expr.left)
                walk(expr.right)
                return
            left, right = expr.left, expr.right
            if isinstance(left, ast.Name) and isinstance(right, ast.IntLit):
                if expr.op in (">=",):
                    note(left.id, lo=right.value)
                elif expr.op == ">":
                    note(left.id, lo=right.value + 1)
                elif expr.op in ("<=",):
                    note(left.id, hi=right.value)
                elif expr.op == "<":
                    note(left.id, hi=right.value - 1)

    for pre in sp.pre:
        walk(pre)
    return bounds


def _function_signature(typed: TypedPackage, sp: ast.Subprogram):
    """(params, return type) of the subprogram as a spec function, or None
    when it has no functional reading (no outputs)."""
    pre_bounds = param_bounds_from_pre(sp)
    params = []
    for p in sp.params:
        if p.mode not in ("in", "in out"):
            continue
        mapped = map_type(typed.type_named(p.type_name))
        lo_hi = pre_bounds.get(p.name)
        if lo_hi is not None and isinstance(mapped, s.NatType):
            lo, hi = lo_hi
            if hi is not None and (lo is None or lo >= 0):
                mapped = s.SubrangeType(hi=hi)
        params.append((p.name, mapped))
    if sp.is_function:
        return tuple(params), map_type(typed.type_named(sp.return_type))
    outs = [p for p in sp.params if p.mode != "in"]
    if len(outs) != 1:
        return None
    return tuple(params), map_type(typed.type_named(outs[0].type_name))


def extract_skeleton(typed: TypedPackage) -> s.Theory:
    """Architecture-only theory: types, tables, function signatures."""
    decls: List[s.SDecl] = []
    for d in typed.package.decls:
        if isinstance(d, (ast.ModTypeDecl, ast.RangeTypeDecl,
                          ast.SubtypeDecl, ast.ArrayTypeDecl)):
            decls.append(s.TypeDef(name=d.name,
                                   definition=map_type(typed.types[d.name])))
        elif isinstance(d, ast.ConstDecl):
            ctype, cval = typed.constants[d.name]
            if isinstance(ctype, ArrayType):
                decls.append(s.ConstDef(
                    name=d.name, type=map_type(ctype),
                    value=s.TableLit(values=tuple(cval))))
            else:
                decls.append(s.ConstDef(
                    name=d.name, type=map_type(ctype),
                    value=s.Num(value=cval if cval >= 0 else 0)))
    for sp in typed.package.subprograms:
        signature = _function_signature(typed, sp)
        if signature is None:
            continue
        params, rtype = signature
        decls.append(s.FunDef(
            name=sp.name, params=params, return_type=rtype,
            body=s.Var(name="#skeleton")))
    return s.Theory(name=typed.package.name, decls=tuple(decls))
