"""The specification-structure match ratio (figure 2(f)).

Defined by the paper as "the percentage of key structural elements -- data
types, operators, functions and tables -- in the original specification
that had direct counterparts in the extracted specification".
"""

from __future__ import annotations

from dataclasses import dataclass

from ..spec import ast as s
from .mapper import ArchitecturalMap, build_map

__all__ = ["MatchRatio", "match_ratio"]


@dataclass(frozen=True)
class MatchRatio:
    matched: int
    total: int
    map: ArchitecturalMap

    @property
    def ratio(self) -> float:
        if self.total == 0:
            return 0.0
        return self.matched / self.total

    @property
    def percent(self) -> float:
        return 100.0 * self.ratio


def match_ratio(original: s.Theory, extracted: s.Theory) -> MatchRatio:
    amap = build_map(original, extracted)
    matched = len(amap.pairs)
    total = matched + len(amap.unmatched_original)
    return MatchRatio(matched=matched, total=total, map=amap)
