"""Specification extraction (reverse synthesis): skeletons, full
extraction, architectural mapping and the match-ratio metric."""

from .extractor import ExtractionError, ExtractionResult, extract_specification
from .mapper import ArchitecturalMap, MatchedPair, build_map, normalize_name
from .matchratio import MatchRatio, match_ratio
from .skeleton import SkeletonError, extract_skeleton, map_type
from .termtospec import TermConversionError, term_to_spec

__all__ = [
    "extract_specification", "ExtractionResult", "ExtractionError",
    "extract_skeleton", "map_type", "SkeletonError",
    "build_map", "ArchitecturalMap", "MatchedPair", "normalize_name",
    "match_ratio", "MatchRatio",
    "term_to_spec", "TermConversionError",
]
