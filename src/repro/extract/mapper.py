"""Architectural and direct mapping between two theories.

The implication proof is organized around a mapping from the original
specification's key structural elements to the extracted specification's
(section 4.1).  Matching is by normalized name (case/underscore
insensitive) with arity agreement for functions and size agreement for
tables -- the refactoring process is what makes these names line up, via
``Rename``, ``ExtractFunction`` and friends.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..spec import ast as s

__all__ = ["MatchedPair", "ArchitecturalMap", "build_map", "normalize_name"]


def normalize_name(name: str) -> str:
    return name.replace("_", "").lower()


@dataclass(frozen=True)
class MatchedPair:
    kind: str  # 'type', 'table', 'function'
    original: str
    extracted: str


@dataclass
class ArchitecturalMap:
    pairs: List[MatchedPair] = field(default_factory=list)
    unmatched_original: List[Tuple[str, str]] = field(default_factory=list)
    unmatched_extracted: List[Tuple[str, str]] = field(default_factory=list)

    def function_pairs(self) -> List[MatchedPair]:
        return [p for p in self.pairs if p.kind == "function"]

    def table_pairs(self) -> List[MatchedPair]:
        return [p for p in self.pairs if p.kind == "table"]

    def extracted_name(self, original: str) -> Optional[str]:
        for p in self.pairs:
            if p.original == original:
                return p.extracted
        return None


def _elements(theory: s.Theory):
    for d in theory.decls:
        if isinstance(d, s.TypeDef):
            yield ("type", d.name, 0)
        elif isinstance(d, s.ConstDef):
            if isinstance(d.type, s.ArrayTypeS):
                yield ("table", d.name, d.type.size)
            else:
                yield ("table", d.name, 0)
        elif isinstance(d, s.FunDef):
            yield ("function", d.name, len(d.params))


def build_map(original: s.Theory, extracted: s.Theory) -> ArchitecturalMap:
    amap = ArchitecturalMap()
    extracted_index: Dict[Tuple[str, str], List[Tuple[str, int]]] = {}
    for kind, name, arity in _elements(extracted):
        extracted_index.setdefault((kind, normalize_name(name)), []).append(
            (name, arity))
    used = set()
    for kind, name, arity in _elements(original):
        candidates = extracted_index.get((kind, normalize_name(name)), [])
        match = None
        for cand_name, cand_arity in candidates:
            if cand_name in used:
                continue
            if kind == "function" and cand_arity != arity:
                continue
            match = cand_name
            break
        if match is not None:
            used.add(match)
            amap.pairs.append(MatchedPair(kind=kind, original=name,
                                          extracted=match))
        else:
            amap.unmatched_original.append((kind, name))
    matched_extracted = {p.extracted for p in amap.pairs}
    for kind, name, arity in _elements(extracted):
        if name not in matched_extracted:
            amap.unmatched_extracted.append((kind, name))
    return amap
