"""Full specification extraction (reverse synthesis).

For each subprogram with a functional reading (a function, or a procedure
with exactly one out parameter), the extractor:

1. executes the body symbolically *without* inlining called subprograms --
   calls stay as applications, preserving the call architecture (the
   paper's *architectural and direct mapping*);
2. converts the resulting summary term into a MiniPVS expression
   (array outputs element-wise);
3. emits a spec function with directly mapped parameter and result types.

Types and constant tables are mapped directly, so the extracted theory has
the same key structural elements as the code -- which, after verification
refactoring, is also the structure of the original specification.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..equiv.symbolic import SymbolicExecutor, UnsupportedProgram
from ..lang import TypedPackage, ast
from ..lang.types import ArrayType
from ..logic import Term, intc, select
from ..spec import ast as s
from .skeleton import SkeletonError, _function_signature, map_type
from .termtospec import TermConversionError, term_to_spec

__all__ = ["ExtractionError", "ExtractionResult", "extract_specification"]


class ExtractionError(Exception):
    pass


class _ArchitecturalExecutor(SymbolicExecutor):
    """Symbolic execution that maps calls instead of inlining them.

    * function calls already stay as ``apply`` terms (we disable inlining);
    * a call to a procedure with one out parameter binds that argument to
      ``apply(procedure, in-args)`` -- the procedure's functional reading.
    """

    def _inline_calls(self, term, depth):
        return term

    def _call(self, stmt, state, ctx, sp, depth):
        from ..logic import apply as apply_term
        callee = self.typed.signatures[stmt.name]
        outs = [(arg, p) for arg, p in zip(stmt.args, callee.params)
                if p.mode != "in"]
        ins = [self._expr(arg, state, ctx, sp)
               for arg, p in zip(stmt.args, callee.params)
               if p.mode != "out"]
        if len(outs) == 1:
            value = apply_term(stmt.name, *ins)
            self._store(outs[0][0], value, state, ctx, sp)
            return None, None
        # Fall back to inlining for multi-output procedures.
        return super()._call(stmt, state, ctx, sp, depth)


class ExtractionResult:
    def __init__(self, theory: s.Theory,
                 skipped: Dict[str, str]):
        self.theory = theory
        #: subprogram name -> reason it has no functional reading
        self.skipped = skipped


def _scalar_terms(term: Term, out_type):
    """Nested lists of the scalar element terms of an array output."""
    if isinstance(out_type, ArrayType):
        return [_scalar_terms(select(term, intc(k)), out_type.elem)
                for k in range(out_type.length)]
    return term


def _flatten(structure, into):
    if isinstance(structure, list):
        for item in structure:
            _flatten(item, into)
    else:
        into.append(structure)


def _rebuild(structure, exprs_iter):
    if isinstance(structure, list):
        return s.ArrayLit(items=tuple(_rebuild(item, exprs_iter)
                                      for item in structure))
    return next(exprs_iter)


def _output_to_spec(term: Term, out_type, constants) -> s.SExpr:
    """Convert an output term; array outputs convert element-wise with
    LET-bound sharing across all elements (so the printed function is
    linear in the summary DAG, not its tree expansion)."""
    from .termtospec import terms_to_spec, wrap_lets
    if isinstance(out_type, ArrayType):
        # A whole-array expression (a call or conditional of calls) converts
        # directly; element-wise eta-expansion would obscure the
        # architecture ("Round(S,K)" must stay "Round(S,K)", not sixteen
        # selects of it).
        if not any(node.op == "store" for node in term.iter_dag()):
            try:
                return term_to_spec(term, constants)
            except TermConversionError:
                pass
        structure = _scalar_terms(term, out_type)
        flat = []
        _flatten(structure, flat)
        bindings, exprs = terms_to_spec(flat, constants)
        body = _rebuild(structure, iter(exprs))
        return wrap_lets(bindings, body)
    return term_to_spec(term, constants)


def extract_specification(typed: TypedPackage) -> ExtractionResult:
    """Extract the full specification theory from an analyzed package."""
    decls: List[s.SDecl] = []
    constants = frozenset(typed.constants)
    for d in typed.package.decls:
        if isinstance(d, (ast.ModTypeDecl, ast.RangeTypeDecl,
                          ast.SubtypeDecl, ast.ArrayTypeDecl)):
            decls.append(s.TypeDef(name=d.name,
                                   definition=map_type(typed.types[d.name])))
        elif isinstance(d, ast.ConstDecl):
            ctype, cval = typed.constants[d.name]
            if isinstance(ctype, ArrayType):
                decls.append(s.ConstDef(name=d.name, type=map_type(ctype),
                                        value=s.TableLit(values=tuple(cval))))
            else:
                decls.append(s.ConstDef(name=d.name, type=map_type(ctype),
                                        value=s.Num(value=cval)))
    skipped: Dict[str, str] = {}
    for sp in typed.package.subprograms:
        signature = _function_signature(typed, sp)
        if signature is None:
            skipped[sp.name] = "no single-output functional reading"
            continue
        params, rtype = signature
        executor = _ArchitecturalExecutor(typed)
        try:
            summary = executor.execute(sp.name)
        except UnsupportedProgram as exc:
            skipped[sp.name] = f"not summarizable: {exc}"
            continue
        if sp.is_function:
            out_term = summary.outputs["Result"]
            out_type = typed.type_named(sp.return_type)
        else:
            out_name = next(p.name for p in sp.params if p.mode != "in")
            out_term = summary.outputs[out_name]
            out_type = typed.type_named(
                next(p.type_name for p in sp.params if p.mode != "in"))
        try:
            body = _output_to_spec(out_term, out_type, constants)
        except TermConversionError as exc:
            skipped[sp.name] = f"conversion failed: {exc}"
            continue
        decls.append(s.FunDef(name=sp.name, params=params,
                              return_type=map_type(out_type), body=body))
    theory = s.Theory(name=typed.package.name, decls=tuple(decls))
    return ExtractionResult(theory=theory, skipped=skipped)
