"""Conversion of logic terms (symbolic summaries) into MiniPVS expressions.

The extractor summarizes a MiniAda subprogram symbolically and converts the
resulting term over the input variables into a specification expression.
Applications of other subprograms stay as applications -- that is the
*direct mapping* that preserves the architecture.
"""

from __future__ import annotations

from typing import Dict, Optional

from ..logic import Term, intc, select
from ..spec import ast as s

__all__ = ["TermConversionError", "term_to_spec"]


class TermConversionError(Exception):
    pass


def _split_negations(args):
    positive, negative = [], []
    for a in args:
        if a.op == "mul" and len(a.args) == 2 and \
                a.args[0].op == "int" and a.args[0].value == -1:
            negative.append(a.args[1])
        elif a.op == "int" and a.value < 0:
            negative.append(intc(-a.value))
        else:
            positive.append(a)
    return positive, negative


#: A shared subterm is LET-bound when it has at least this many DAG nodes.
_LET_MIN_NODES = 6


def _shared_nodes(terms):
    """Subterms with >= 2 parents worth LET-binding, in dependency order."""
    parents: Dict[int, int] = {}
    sizes: Dict[int, int] = {}
    order = []
    seen = set()
    for t in terms:
        for node in t.iter_dag():
            if node._id not in seen:
                seen.add(node._id)
                order.append(node)
                sizes[node._id] = 1 + sum(sizes[c._id] for c in node.args)
            for child in node.args:
                parents[child._id] = parents.get(child._id, 0) + 1
    for t in terms:
        parents[t._id] = parents.get(t._id, 0) + 1
    return [node for node in order
            if parents.get(node._id, 0) >= 2
            and sizes[node._id] >= _LET_MIN_NODES
            and node.op not in ("int", "bool", "var", "forall", "exists")]


def terms_to_spec(terms, constants=frozenset()):
    """Convert several terms jointly, LET-binding shared subterms so the
    printed specification stays linear in the DAG (an extracted function
    whose tree form would be gigabytes prints as a LET chain instead).

    Returns ``(bindings, exprs)`` where ``bindings`` is a list of
    ``(name, SExpr)`` in dependency order."""
    cache: Dict[int, s.SExpr] = {}
    bindings = []
    for i, node in enumerate(_shared_nodes(terms)):
        name = f"L{i + 1}"
        value = _convert_raw(node, constants, cache)
        cache[node._id] = s.Var(name=name)
        bindings.append((name, value))
    exprs = [_convert(t, constants, cache) for t in terms]
    return bindings, exprs


def wrap_lets(bindings, body: s.SExpr) -> s.SExpr:
    for name, value in reversed(bindings):
        body = s.Let(var=name, value=value, body=body)
    return body


def term_to_spec(term: Term, constants=frozenset()) -> s.SExpr:
    """Convert a term to a spec expression.  ``constants`` names table
    constants so ``apply(Table, i)`` becomes ``Table[i]``.  Shared subterms
    become LET bindings."""
    bindings, (expr,) = terms_to_spec([term], constants)
    return wrap_lets(bindings, expr)


def _convert(term: Term, constants, cache: Dict[int, s.SExpr]) -> s.SExpr:
    hit = cache.get(term._id)
    if hit is not None:
        return hit
    result = _convert_raw(term, constants, cache)
    cache[term._id] = result
    return result


def _chain(op: str, items):
    out = items[0]
    for item in items[1:]:
        out = s.Bin(op=op, left=out, right=item)
    return out


def _convert_raw(term: Term, constants, cache) -> s.SExpr:
    op = term.op
    if op == "int":
        if term.value < 0:
            return s.Bin(op="-", left=s.Num(value=0),
                         right=s.Num(value=-term.value))
        return s.Num(value=term.value)
    if op == "bool":
        return s.BoolConst(value=term.value)
    if op == "var":
        name = term.value
        if "#" in name or "%" in name or "@" in name:
            raise TermConversionError(
                f"symbolic artifact variable '{name}' reached extraction "
                f"(uninitialized read or havoc)")
        return s.Var(name=name)
    if op == "add":
        positive, negative = _split_negations(term.args)
        pos = [_convert(a, constants, cache) for a in positive] or \
            [s.Num(value=0)]
        out = _chain("+", pos)
        for n in negative:
            out = s.Bin(op="-", left=out, right=_convert(n, constants, cache))
        return out
    if op == "mul":
        return _chain("*", [_convert(a, constants, cache)
                            for a in term.args])
    if op == "div":
        return s.Bin(op="DIV", left=_convert(term.args[0], constants, cache),
                     right=_convert(term.args[1], constants, cache))
    if op == "mod":
        return s.Bin(op="MOD", left=_convert(term.args[0], constants, cache),
                     right=_convert(term.args[1], constants, cache))
    if op in ("xor", "band", "bor"):
        fn = {"xor": "XOR", "band": "BITAND", "bor": "BITOR"}[op]
        return s.Call(fn=fn, args=tuple(_convert(a, constants, cache)
                                        for a in term.args))
    if op == "bnot":
        width = term.value
        mask = (1 << width) - 1
        return s.Call(fn="XOR", args=(
            _convert(term.args[0], constants, cache), s.Num(value=mask)))
    if op == "shl":
        return s.Call(fn="SHL", args=(
            _convert(term.args[0], constants, cache),
            _convert(term.args[1], constants, cache)))
    if op == "shr":
        return s.Call(fn="SHR", args=(
            _convert(term.args[0], constants, cache),
            _convert(term.args[1], constants, cache)))
    if op == "select":
        return s.Index(array=_convert(term.args[0], constants, cache),
                       index=_convert(term.args[1], constants, cache))
    if op == "apply":
        if term.value in constants:
            return s.Index(array=s.Var(name=term.value),
                           index=_convert(term.args[0], constants, cache))
        return s.Call(fn=term.value,
                      args=tuple(_convert(a, constants, cache)
                                 for a in term.args))
    if op == "ite":
        return s.IfExpr(cond=_convert(term.args[0], constants, cache),
                        then=_convert(term.args[1], constants, cache),
                        orelse=_convert(term.args[2], constants, cache))
    if op == "eq":
        return s.Bin(op="=", left=_convert(term.args[0], constants, cache),
                     right=_convert(term.args[1], constants, cache))
    if op == "lt":
        return s.Bin(op="<", left=_convert(term.args[0], constants, cache),
                     right=_convert(term.args[1], constants, cache))
    if op == "le":
        return s.Bin(op="<=", left=_convert(term.args[0], constants, cache),
                     right=_convert(term.args[1], constants, cache))
    if op == "not":
        return s.Call(fn="NOT",
                      args=(_convert(term.args[0], constants, cache),))
    if op == "and":
        return _chain("AND", [_convert(a, constants, cache)
                              for a in term.args])
    if op == "or":
        return _chain("OR", [_convert(a, constants, cache)
                             for a in term.args])
    if op == "implies":
        left = _convert(term.args[0], constants, cache)
        right = _convert(term.args[1], constants, cache)
        return s.Bin(op="OR", left=s.Call(fn="NOT", args=(left,)),
                     right=right)
    if op == "store":
        # A fully defined store chain over an uninitialized base is an
        # element-wise array value (arises for locally built arrays passed
        # to calls).
        elements: Dict[int, Term] = {}
        node = term
        while node.op == "store":
            base, idx, value = node.args
            if idx.op != "int":
                raise TermConversionError("store with symbolic index")
            elements.setdefault(idx.value, value)
            node = base
        root = node
        while root.op == "select":
            root = root.args[0]
        if not (root.op == "var" and "#" in str(root.value)):
            raise TermConversionError("partial array update reached "
                                      "conversion")
        size = max(elements) + 1
        if set(elements) != set(range(size)):
            raise TermConversionError("array not fully defined")
        return s.ArrayLit(items=tuple(
            _convert(elements[i], constants, cache) for i in range(size)))
    raise TermConversionError(f"cannot convert term op '{op}'")
