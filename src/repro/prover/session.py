"""The implementation-proof session.

Runs the full SPARK-style pipeline for a package: examine (generate +
simplify VCs), then discharge each VC automatically, then apply any
supplied interactive proof scripts to the survivors.  The result carries
exactly the quantities section 6.2.3 of the paper reports: total VCs,
percentage discharged automatically, subprograms fully automatic, the
maximum length of VCs needing human intervention, and wall/simulated time.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..lang.typecheck import TypedPackage
from ..vcgen import Examiner, ExaminerLimits, ExaminerReport, VCRecord
from .auto import AutoProver, ProofResult
from .tactics import InteractiveProver, ProofScript

__all__ = ["VCOutcome", "ImplementationProofResult", "ImplementationProof"]


@dataclass
class VCOutcome:
    vc: VCRecord
    stage: str   # 'simplifier', 'auto', 'interactive', 'undischarged'
    result: Optional[ProofResult] = None


@dataclass
class ImplementationProofResult:
    report: ExaminerReport
    outcomes: List[VCOutcome]
    wall_seconds: float

    @property
    def feasible(self) -> bool:
        return self.report.feasible

    @property
    def total_vcs(self) -> int:
        return len(self.outcomes)

    @property
    def auto_discharged(self) -> int:
        return sum(1 for o in self.outcomes
                   if o.stage in ("simplifier", "auto"))

    @property
    def interactive_discharged(self) -> int:
        return sum(1 for o in self.outcomes if o.stage == "interactive")

    @property
    def undischarged(self) -> List[VCOutcome]:
        return [o for o in self.outcomes if o.stage == "undischarged"]

    @property
    def auto_percent(self) -> float:
        if not self.outcomes:
            return 100.0
        return 100.0 * self.auto_discharged / self.total_vcs

    @property
    def all_proved(self) -> bool:
        return self.feasible and not self.undischarged

    def fully_automatic_subprograms(self) -> List[str]:
        by_sp: Dict[str, bool] = {}
        for o in self.outcomes:
            name = o.vc.subprogram
            by_sp.setdefault(name, True)
            if o.stage not in ("simplifier", "auto"):
                by_sp[name] = False
        return sorted(n for n, auto in by_sp.items() if auto)

    @property
    def max_interactive_vc_lines(self) -> int:
        """Longest VC (in estimated lines) that needed human intervention."""
        lines = [o.vc.simplified_bytes // 40 + 1 for o in self.outcomes
                 if o.stage in ("interactive", "undischarged")]
        return max(lines, default=0)

    def undischarged_kinds(self) -> Dict[str, int]:
        out: Dict[str, int] = {}
        for o in self.undischarged:
            out[o.vc.kind] = out.get(o.vc.kind, 0) + 1
        return out


class ImplementationProof:
    """Discharges all VCs of a package: the Echo implementation proof."""

    #: The automatic prover gives up after this long per VC and hands the
    #: VC to the interactive scripts (real provers run with a timeout; the
    #: paper's automatic/interactive boundary presumes one).
    AUTO_TIMEOUT_SECONDS = 3.0
    INTERACTIVE_TIMEOUT_SECONDS = 30.0

    def __init__(self, typed: TypedPackage,
                 limits: Optional[ExaminerLimits] = None,
                 scripts: Optional[Dict[str, Sequence[ProofScript]]] = None):
        """``scripts`` maps a subprogram name to the proof scripts to try,
        in order, on each of its undischarged VCs."""
        self.typed = typed
        self.limits = limits
        self.scripts = scripts or {}

    def run(self, subprogram_names: Optional[Sequence[str]] = None
            ) -> ImplementationProofResult:
        started = time.perf_counter()
        examiner = Examiner(self.typed, limits=self.limits)
        report = examiner.examine(subprogram_names)
        outcomes: List[VCOutcome] = []
        auto_provers: Dict[str, AutoProver] = {}
        interactive_provers: Dict[str, InteractiveProver] = {}
        for analysis in report.per_subprogram.values():
            for vc in analysis.vcs:
                if vc.discharged_by_simplifier:
                    outcomes.append(VCOutcome(vc=vc, stage="simplifier"))
                    continue
                prover = auto_provers.get(vc.subprogram)
                if prover is None:
                    prover = AutoProver(
                        self.typed, subprogram_name=vc.subprogram,
                        timeout_seconds=self.AUTO_TIMEOUT_SECONDS)
                    auto_provers[vc.subprogram] = prover
                result = prover.prove(vc.simplified.simplified)
                if result.proved:
                    outcomes.append(VCOutcome(vc=vc, stage="auto",
                                              result=result))
                    continue
                outcome = self._try_scripts(
                    vc, interactive_provers)
                outcomes.append(outcome)
        return ImplementationProofResult(
            report=report,
            outcomes=outcomes,
            wall_seconds=time.perf_counter() - started,
        )

    def _try_scripts(self, vc: VCRecord,
                     interactive_provers: Dict[str, InteractiveProver]
                     ) -> VCOutcome:
        scripts = self.scripts.get(vc.subprogram, ())
        if not scripts:
            return VCOutcome(vc=vc, stage="undischarged")
        prover = interactive_provers.get(vc.subprogram)
        if prover is None:
            prover = InteractiveProver(self.typed,
                                       subprogram_name=vc.subprogram)
            interactive_provers[vc.subprogram] = prover
        for script in scripts:
            result = prover.run_script(vc.simplified.simplified, script)
            if result.proved:
                return VCOutcome(vc=vc, stage="interactive", result=result)
        return VCOutcome(vc=vc, stage="undischarged", result=result)
