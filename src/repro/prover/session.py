"""The implementation-proof session.

Runs the full SPARK-style pipeline for a package: examine (generate +
simplify VCs), then discharge each VC automatically, then apply any
supplied interactive proof scripts to the survivors.  The result carries
exactly the quantities section 6.2.3 of the paper reports: total VCs,
percentage discharged automatically, subprograms fully automatic, the
maximum length of VCs needing human intervention, and wall/simulated time.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..exec import VCPayload, package_fingerprint, vc_obligation
from ..exec import events as ev
from ..exec.cache import default_cache
from ..exec.config import ExecConfig, coerce_exec_config, \
    reject_legacy_exec_kwargs
from ..exec.telemetry import default_telemetry
from ..incr.fingerprint import cone_fingerprints
from ..incr.manifest import coerce_manifest_store, run_config_digest
from ..incr.plan import IncrementalStats, plan_incremental
from ..lang.typecheck import TypedPackage
from ..logic import NormalizationCache, encode_terms, fingerprint
from ..vcgen import Examiner, ExaminerLimits, ExaminerReport, VCRecord
from ..vcgen.simplifier import simplifier_rules_key
from .auto import AutoProver, ProofResult
from .tactics import InteractiveProver, ProofScript

__all__ = ["VCOutcome", "ImplementationProofResult", "ImplementationProof"]


@dataclass
class VCOutcome:
    vc: VCRecord
    stage: str   # 'simplifier', 'auto', 'interactive', 'undischarged'
    result: Optional[ProofResult] = None


@dataclass
class ImplementationProofResult:
    report: ExaminerReport
    outcomes: List[VCOutcome]
    wall_seconds: float
    #: Populated only by incremental sessions (DESIGN.md §15): how many
    #: verdicts replayed from the manifest vs went through the full
    #: examine-and-discharge path.
    incremental: Optional[IncrementalStats] = None

    @property
    def feasible(self) -> bool:
        return self.report.feasible

    @property
    def total_vcs(self) -> int:
        return len(self.outcomes)

    @property
    def auto_discharged(self) -> int:
        return sum(1 for o in self.outcomes
                   if o.stage in ("simplifier", "auto"))

    @property
    def interactive_discharged(self) -> int:
        return sum(1 for o in self.outcomes if o.stage == "interactive")

    @property
    def undischarged(self) -> List[VCOutcome]:
        return [o for o in self.outcomes if o.stage == "undischarged"]

    @property
    def auto_percent(self) -> float:
        if not self.outcomes:
            return 100.0
        return 100.0 * self.auto_discharged / self.total_vcs

    @property
    def all_proved(self) -> bool:
        return self.feasible and not self.undischarged

    def fully_automatic_subprograms(self) -> List[str]:
        by_sp: Dict[str, bool] = {}
        for o in self.outcomes:
            name = o.vc.subprogram
            by_sp.setdefault(name, True)
            if o.stage not in ("simplifier", "auto"):
                by_sp[name] = False
        return sorted(n for n, auto in by_sp.items() if auto)

    @property
    def max_interactive_vc_lines(self) -> int:
        """Longest VC (in estimated lines) that needed human intervention."""
        lines = [o.vc.simplified_bytes // 40 + 1 for o in self.outcomes
                 if o.stage in ("interactive", "undischarged")]
        return max(lines, default=0)

    def undischarged_kinds(self) -> Dict[str, int]:
        out: Dict[str, int] = {}
        for o in self.undischarged:
            out[o.vc.kind] = out.get(o.vc.kind, 0) + 1
        return out


class ImplementationProof:
    """Discharges all VCs of a package: the Echo implementation proof.

    Discharge runs through the obligation scheduler
    (:mod:`repro.exec`): one obligation per VC that survives the
    simplifier, grouped by subprogram so that the per-subprogram prover
    state (memo caches, fresh-name counters) sees its VCs serially and in
    order even when ``jobs > 1`` -- ``jobs=1`` therefore reproduces the
    historical serial run bit for bit, and ``jobs=N`` fans subprograms
    out across a thread pool (``backend='thread'``) or across worker
    processes (``backend='process'``: each obligation also carries a
    :class:`~repro.exec.payload.VCPayload` naming the same discharge
    declaratively).  Results are cached content-addressed on
    (package text, subprogram, VC term, prover configuration), so
    re-verifying unchanged code is a replay, not a re-proof.
    """

    #: The automatic prover gives up after this long per VC and hands the
    #: VC to the interactive scripts (real provers run with a timeout; the
    #: paper's automatic/interactive boundary presumes one).
    AUTO_TIMEOUT_SECONDS = 3.0
    INTERACTIVE_TIMEOUT_SECONDS = 30.0

    def __init__(self, typed: TypedPackage,
                 limits: Optional[ExaminerLimits] = None,
                 scripts: Optional[Dict[str, Sequence[ProofScript]]] = None,
                 exec: Optional[ExecConfig] = None,
                 norm_cache: Optional[NormalizationCache] = None,
                 manifest=None,
                 incremental: bool = False,
                 **legacy):
        """``scripts`` maps a subprogram name to the proof scripts to try,
        in order, on each of its undischarged VCs.  ``exec`` configures the
        obligation scheduler (backend, jobs, cache, telemetry, per-VC
        timeout -- overruns map to ``undischarged``); the PR-3 era
        ``jobs``/``cache``/``telemetry``/``obligation_timeout`` shims are
        gone and raise ``TypeError``.  ``norm_cache`` optionally supplies a
        caller-owned :class:`~repro.logic.NormalizationCache` so warm
        normal forms survive beyond this session (the serve layer keeps
        one per tenant namespace across requests); by default the session
        owns a fresh one, the historical behaviour.

        ``manifest`` (a :class:`~repro.incr.ManifestStore` or a directory
        path) makes the session persist a run manifest after each run;
        ``incremental=True`` additionally consults it *before* the run,
        replaying verdicts for subprograms whose cone fingerprint is
        unchanged straight from the result cache (DESIGN.md §15).
        Incremental mode without a manifest store is a contradiction and
        fails loudly."""
        reject_legacy_exec_kwargs("ImplementationProof", legacy)
        self.typed = typed
        self.limits = limits
        self.scripts = scripts or {}
        self.manifest = coerce_manifest_store(manifest)
        self.incremental = bool(incremental)
        if self.incremental and self.manifest is None:
            raise ValueError("incremental=True requires manifest= "
                             "(a ManifestStore or a directory path)")
        self.exec = coerce_exec_config(exec, owner="ImplementationProof")
        #: Guards lazy per-subprogram prover construction across scheduler
        #: worker threads.  One lock per proof session: every discharge
        #: thunk synchronizes on this same instance (a per-call fallback
        #: lock would provide no mutual exclusion at all).
        self._provers_lock = threading.Lock()
        #: Cross-obligation normalization cache (DESIGN.md §13): one per
        #: proof session unless the caller shares one.  The examiner warms
        #: it while simplifying, the per-VC provers reuse it
        #: (serial/thread backends share this instance; the process
        #: backend ships each subprogram's warm entries to workers through
        #: the VC payloads).  Keys are fingerprint-scoped
        #: (``simplifier_rules_key``), so sharing across sessions is sound
        #: for any mix of packages.
        self._norm_cache = norm_cache if norm_cache is not None \
            else NormalizationCache()

    def run(self, subprogram_names: Optional[Sequence[str]] = None
            ) -> ImplementationProofResult:
        started = time.perf_counter()
        names = list(subprogram_names) if subprogram_names is not None \
            else [sp.name for sp in self.typed.package.subprograms]
        config = self._prover_config()

        # Incremental planning: replayable subprograms skip examination
        # entirely; everything else runs the ordinary path below.
        replayed = {}
        incr_stats: Optional[IncrementalStats] = None
        previous = None
        config_digest = None
        if self.manifest is not None:
            config_digest = run_config_digest(config, self.limits)
        if self.incremental:
            previous = self.manifest.load(self.typed.package.name,
                                          config_digest)
            replayed, incr_stats = plan_incremental(
                previous, self.typed, names, self._resolved_cache())

        check_names = [n for n in names if n not in replayed]
        examiner = Examiner(self.typed, limits=self.limits,
                            shared=self._norm_cache)
        report = examiner.examine(check_names)

        package_fp = package_fingerprint(self.typed)
        #: Per-subprogram rewriting instrumentation folded out of the
        #: per-VC provers as they retire (the provers themselves are
        #: constructed and discarded inside each discharge thunk).
        hotpath: Dict[str, Dict[str, int]] = {}

        # Assemble the outcome list as slots so simplifier-discharged VCs
        # keep their historical interleaved positions.
        slots: List[Tuple[str, object]] = []
        obligations = []
        vc_records: List[VCRecord] = []
        warm_cache: Dict[str, tuple] = {}
        for analysis in report.per_subprogram.values():
            for vc in analysis.vcs:
                if vc.discharged_by_simplifier:
                    slots.append(("done", VCOutcome(vc=vc,
                                                    stage="simplifier")))
                    continue
                discharge = self._discharger(vc, hotpath)
                warm_key, warm_norms = self._warm_norms(vc.subprogram,
                                                        warm_cache)
                payload = VCPayload(
                    package=self.typed.package, package_fp=package_fp,
                    subprogram=vc.subprogram,
                    term=vc.simplified.simplified,
                    scripts=tuple(self.scripts.get(vc.subprogram, ())),
                    auto_timeout=self.AUTO_TIMEOUT_SECONDS,
                    warm_key=warm_key, warm_norms=warm_norms)
                obligations.append(vc_obligation(
                    vc, discharge, package_fp=package_fp, config=config,
                    payload=payload))
                vc_records.append(vc)
                slots.append(("ob", len(obligations) - 1))

        results = self.exec.scheduler().run(obligations)

        # Fold prover-side hot-path instrumentation back into the report:
        # the interesting rewriting (per-VC fresh simplifiers hitting the
        # cross-obligation cache) happens during discharge, after the
        # examiner's numbers were taken.  Parent-side provers only -- the
        # process backend's counters live and die in its workers.
        for name, counters in hotpath.items():
            analysis = report.per_subprogram.get(name)
            if analysis is None:
                continue
            analysis.index_hits += counters["index_hits"]
            analysis.index_skipped_rules += counters["index_skipped_rules"]
            analysis.cross_vc_hits += counters["cross_vc_hits"]

        outcomes: List[VCOutcome] = []
        #: Subprograms with at least one scheduler-level failure (timeout,
        #: recorded error, crash): their verdicts were never cached, so
        #: they must not enter the manifest as replayable.
        unclean: set = set()
        for tag, payload in slots:
            if tag == "done":
                outcomes.append(payload)
                continue
            result = results[payload]
            record = vc_records[payload]
            if result.ok:
                stage, proof_result = result.value
                outcomes.append(VCOutcome(vc=record, stage=stage,
                                          result=proof_result))
            else:
                # Scheduler-level timeout (or recorded error): the VC is
                # honestly undischarged rather than crashing the run.
                unclean.add(record.subprogram)
                outcomes.append(VCOutcome(
                    vc=record, stage="undischarged",
                    result=ProofResult(False, result.status,
                                       detail=result.error or "")))

        if incr_stats is not None:
            incr_stats.rechecked_vcs = len(outcomes)
            self._record_replays(replayed)

        # Merge checked and replayed subprograms back into request order
        # (== declaration order for a full run), so the incremental result
        # is positionally identical to a cold one.
        merged_per: Dict[str, object] = {}
        by_subprogram: Dict[str, List[VCOutcome]] = {}
        for outcome in outcomes:
            by_subprogram.setdefault(outcome.vc.subprogram,
                                     []).append(outcome)
        merged_outcomes: List[VCOutcome] = []
        for name in names:
            if name in replayed:
                merged_per[name] = replayed[name].analysis
                merged_outcomes.extend(replayed[name].outcomes)
            else:
                merged_per[name] = report.per_subprogram[name]
                merged_outcomes.extend(by_subprogram.get(name, []))
        merged_report = ExaminerReport(per_subprogram=merged_per,
                                       wall_seconds=report.wall_seconds)

        if self.manifest is not None:
            self._save_manifest(names, replayed, previous, report,
                                vc_records, obligations, unclean,
                                package_fp, config_digest)

        return ImplementationProofResult(
            report=merged_report,
            outcomes=merged_outcomes,
            wall_seconds=time.perf_counter() - started,
            incremental=incr_stats,
        )

    def _resolved_cache(self):
        """The :class:`~repro.exec.ResultCache` the scheduler will use
        (mirrors the scheduler's own resolution): ``None`` in the config
        selects the process default, ``False`` disables caching -- and
        with it, incremental replay."""
        cache = self.exec.cache
        if cache is None:
            return default_cache()
        if cache is False:
            return None
        return cache

    def _record_replays(self, replayed) -> None:
        """Mirror the scheduler's cache-hit telemetry for replayed VCs:
        one submitted/cached pair per scheduler-bound VC, tagged so the
        counters distinguish manifest replay from ordinary warm hits."""
        telemetry = self.exec.telemetry if self.exec.telemetry is not None \
            else default_telemetry()
        for name, entry in replayed.items():
            for outcome in entry.outcomes:
                if outcome.vc.discharged_by_simplifier:
                    continue
                label = f"{name}/{outcome.vc.name}"
                telemetry.record(ev.SUBMITTED, "vc", label,
                                 detail="incremental")
                telemetry.record(ev.CACHED, "vc", label,
                                 detail="incremental_replay")

    def _save_manifest(self, names, replayed, previous, report,
                       vc_records, obligations, unclean,
                       package_fp: str, config_digest: str) -> None:
        """Persist the post-run manifest: replayed subprograms carry
        their previous entries forward verbatim (their recorded cache
        keys, under the *old* package fingerprint, are exactly what makes
        them replayable again); freshly checked subprograms enter only
        when their analysis was feasible and every scheduled VC actually
        produced (and cached) a verdict."""
        key_by_vc = {id(vc): ob.cache_key
                     for vc, ob in zip(vc_records, obligations)}
        old_entries = (previous or {}).get("subprograms", {})
        cones = cone_fingerprints(self.typed)
        entries: Dict[str, dict] = {}
        for name in names:
            if name in replayed:
                entries[name] = old_entries[name]
                continue
            analysis = report.per_subprogram[name]
            if not analysis.feasible or name in unclean:
                continue
            rows = []
            for vc in analysis.vcs:
                rows.append({
                    "name": vc.name,
                    "kind": vc.kind,
                    "generated_bytes": vc.generated_bytes,
                    "simplified_bytes": vc.simplified_bytes,
                    "simplifier": vc.discharged_by_simplifier,
                    "term_fp": fingerprint(vc.simplified.simplified),
                    "cache_key": None if vc.discharged_by_simplifier
                    else key_by_vc[id(vc)],
                })
            entries[name] = {
                "cone_fp": cones[name],
                "generated_bytes": analysis.generated_bytes,
                "simplified_bytes": analysis.simplified_bytes,
                "work_units": analysis.work_units,
                "fixpoint_exhausted": analysis.fixpoint_exhausted,
                "vcs": rows,
            }
        self.manifest.save(self.typed.package.name, package_fp,
                           config_digest, entries)

    #: At most this many warm normal forms ship per subprogram: the MRU
    #: tail of the examiner's entries (the last-converging, largest
    #: subtrees), keeping payload pickles bounded.
    WARM_NORMS_LIMIT = 160

    def _warm_norms(self, subprogram: str, memo: Dict[str, tuple]):
        """``(scope_key, (fingerprints, wire))`` of the examiner-warmed
        normal forms for one subprogram -- or ``(None, None)`` on the
        in-process backends, where every thunk shares the live session
        cache and shipping would be dead weight.  Computed once per
        subprogram (the same tuple rides every one of its VC payloads);
        a pure accelerator for process and farm workers, never a
        verdict input."""
        if self.exec.backend not in ("process", "remote"):
            return None, None
        entry = memo.get(subprogram)
        if entry is None:
            key = simplifier_rules_key(self.typed, subprogram)
            pairs = self._norm_cache.export(key,
                                            limit=self.WARM_NORMS_LIMIT)
            if pairs:
                fps = tuple(fp for fp, _ in pairs)
                wire = encode_terms([term for _, term in pairs])
                entry = (key, (fps, wire))
            else:
                entry = (None, None)
            memo[subprogram] = entry
        return entry

    def _prover_config(self) -> str:
        """Cache-key component for everything that shapes a VC's outcome
        besides the VC term and package text."""
        parts = [f"auto_timeout={self.AUTO_TIMEOUT_SECONDS}"]
        for name in sorted(self.scripts):
            names = ",".join(f"{s.name}:{s.steps}"
                             for s in self.scripts[name])
            parts.append(f"scripts[{name}]={names}")
        return ";".join(parts)

    def _discharger(self, vc: VCRecord,
                    hotpath: Dict[str, Dict[str, int]]):
        """The thunk for one VC: auto prover, then interactive scripts --
        exactly the historical inline sequence.  Provers are constructed
        *per VC*: an instance accumulates search history (fresh-name
        counters, per-term memos) that would make this VC's verdict
        depend on which siblings happened to run earlier on the same
        instance -- and the farm's workers each see a different sibling
        history than the serial order, so per-VC construction is what
        keeps every backend and every obligation distribution
        bit-identical.  The session normalization cache stays shared: a
        cached normal form is a pure function of (rules, term), so
        warmth moves wall clock, never verdicts.  Hot-path counters are
        folded into ``hotpath`` as each prover retires."""

        def discharge():
            prover = AutoProver(
                self.typed, subprogram_name=vc.subprogram,
                timeout_seconds=self.AUTO_TIMEOUT_SECONDS,
                shared=self._norm_cache)
            result = prover.prove(vc.simplified.simplified)
            self._fold_hotpath(hotpath, vc.subprogram, prover)
            if result.proved:
                return "auto", result
            outcome = self._try_scripts(vc, hotpath)
            return outcome.stage, outcome.result

        return discharge

    def _fold_hotpath(self, hotpath: Dict[str, Dict[str, int]],
                      subprogram: str, prover: AutoProver) -> None:
        """Accumulate one retired prover's rewriting instrumentation
        (thread-safe: dischargers run concurrently on the thread
        backend)."""
        counters = prover.hotpath_counters()
        with self._provers_lock:
            acc = hotpath.setdefault(subprogram, {
                "index_hits": 0, "index_skipped_rules": 0,
                "cross_vc_hits": 0})
            for key, value in counters.items():
                acc[key] += value

    def _try_scripts(self, vc: VCRecord,
                     hotpath: Dict[str, Dict[str, int]]) -> VCOutcome:
        scripts = self.scripts.get(vc.subprogram, ())
        if not scripts:
            return VCOutcome(vc=vc, stage="undischarged")
        prover = InteractiveProver(self.typed,
                                   subprogram_name=vc.subprogram,
                                   shared=self._norm_cache)
        try:
            for script in scripts:
                result = prover.run_script(vc.simplified.simplified, script)
                if result.proved:
                    return VCOutcome(vc=vc, stage="interactive",
                                     result=result)
            return VCOutcome(vc=vc, stage="undischarged", result=result)
        finally:
            self._fold_hotpath(hotpath, vc.subprogram, prover.auto)
