"""Interactive proof tactics.

The paper reports that VCs the tools could not discharge automatically
needed "quite straightforward manual intervention, usually involving
either the application of preconditions or induction on loop invariants"
(6.2.3), and that implication lemmas needed "expansion of function
definitions, introduction of predicates over types, or application of
extensionality" (6.2.4).

We model that human guidance as *proof scripts*: small lists of tactic
steps applied to a VC before re-running the automatic prover.  The tactic
vocabulary mirrors the manual steps the paper lists:

``Expand(f)``            definition expansion: replace ``f(args)`` by f's
                         symbolic summary instantiated at the arguments
``Cases(var, lo, hi)``   case split a variable over a literal range
``Instantiate(rule, {var: value})``  manual axiom instantiation
``Extensionality()``     turn an array equality goal into element-wise
                         goals over the declared index range
``Normalize()``          re-run the rewriter

A script succeeding means the VC is *discharged interactively*; the
session records it separately from automatic discharges so the
automatic/interactive split (86.6% in the paper) is measurable.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..equiv.symbolic import SymbolicExecutor, UnsupportedProgram
from ..lang import TypedPackage
from ..logic import (
    Term, conj, eq, implies, intc, le, rebuild_smart, select,
    substitute_simplifying, var,
)
from .auto import AutoProver, ProofResult

__all__ = ["Tactic", "Expand", "Cases", "CasesVar", "Instantiate",
           "Extensionality", "Normalize", "ProofScript",
           "InteractiveProver"]


class Tactic:
    """Base class: a tactic maps one goal to a list of subgoals."""

    def apply(self, goals: List[Term], prover: "InteractiveProver"
              ) -> List[Term]:
        raise NotImplementedError


@dataclass(frozen=True)
class Expand(Tactic):
    function_name: str

    def apply(self, goals, prover):
        return [prover.expand_function(g, self.function_name) for g in goals]


@dataclass(frozen=True)
class Cases(Tactic):
    """Split on every value of ``var_name`` in ``lo .. hi``."""

    var_name: str
    lo: int
    hi: int

    def apply(self, goals, prover):
        out = []
        for g in goals:
            if self.var_name not in g.free_vars():
                out.append(g)
                continue
            for value in range(self.lo, self.hi + 1):
                out.append(substitute_simplifying(
                    g, {self.var_name: intc(value)}))
        return out


@dataclass(frozen=True)
class CasesVar(Tactic):
    """Split on every value of each free variable whose *base* name matches
    (fresh variables carry ``name%k`` decorations after loop havoc; the
    human proving interactively says "case split on C", so the tactic
    matches the base name)."""

    base_name: str
    lo: int
    hi: int

    def apply(self, goals, prover):
        out = []
        for g in goals:
            matching = [v for v in g.free_vars()
                        if str(v).split("%")[0].split("!")[0]
                        == self.base_name]
            if not matching:
                out.append(g)
                continue
            expanded = [g]
            for var_name in matching:
                expanded = [
                    substitute_simplifying(e, {var_name: intc(value)})
                    for e in expanded
                    for value in range(self.lo, self.hi + 1)]
            out.extend(expanded)
        return out


@dataclass(frozen=True)
class Instantiate(Tactic):
    rule_name: str
    binding: Tuple[Tuple[str, int], ...]  # ((var, value), ...)

    def apply(self, goals, prover):
        axiom = prover.axiom_named(self.rule_name)
        mapping = {name: intc(value) for name, value in self.binding}
        fact = substitute_simplifying(axiom.body, mapping)
        return [implies(fact, g) for g in goals]


@dataclass(frozen=True)
class Extensionality(Tactic):
    """Array equality -> element-wise equalities over ``0 .. length-1``."""

    length: int

    def apply(self, goals, prover):
        out = []
        for g in goals:
            hyps, concl = _split_goal(g)
            if concl.op == "eq":
                a, b = concl.args
                parts = [eq(select(a, intc(k)), select(b, intc(k)))
                         for k in range(self.length)]
                concl = conj(*parts)
                g = _rebuild_goal(hyps, concl)
            out.append(g)
        return out


@dataclass(frozen=True)
class Normalize(Tactic):
    def apply(self, goals, prover):
        from ..logic import Rewriter, default_rules
        rewriter = Rewriter(default_rules())
        return [rewriter.normalize(g) for g in goals]


@dataclass(frozen=True)
class ProofScript:
    """A named, ordered list of tactic steps for one stubborn VC family."""

    name: str
    tactics: Tuple[Tactic, ...]

    @property
    def steps(self) -> int:
        return len(self.tactics)


def _split_goal(goal: Term):
    hyps = []
    while goal.op == "implies":
        hyps.append(goal.args[0])
        goal = goal.args[1]
    return hyps, goal


def _rebuild_goal(hyps, concl):
    for h in reversed(hyps):
        concl = implies(h, concl)
    return concl


class InteractiveProver:
    """Applies proof scripts, then closes subgoals with the auto prover."""

    def __init__(self, typed: TypedPackage,
                 subprogram_name: Optional[str] = None,
                 subgoal_timeout: float = 2.0,
                 shared=None):
        self.typed = typed
        self.auto = AutoProver(typed, subprogram_name=subprogram_name,
                               timeout_seconds=subgoal_timeout,
                               shared=shared)
        self._symbolic = SymbolicExecutor(typed)

    def axiom_named(self, name: str):
        for axiom in self.auto.axioms:
            if axiom.name == name:
                return axiom
        raise KeyError(f"no axiom named {name!r}")

    def expand_function(self, goal: Term, fname: str) -> Term:
        sig = self.typed.signatures.get(fname)
        if sig is None or not sig.is_function:
            raise KeyError(f"{fname} is not a defined function")
        try:
            summary = self._symbolic.execute_cached(fname)
        except UnsupportedProgram as exc:
            raise KeyError(f"cannot expand {fname}: {exc}")
        body = summary.outputs["Result"]
        params = [p.name for p in sig.params]

        def rewrite(term: Term) -> Term:
            if not term.args:
                return term
            new_args = tuple(rewrite(a) for a in term.args)
            if all(n is o for n, o in zip(new_args, term.args)):
                rebuilt = term
            else:
                rebuilt = rebuild_smart(term.op, new_args, term.value)
            if rebuilt.op == "apply" and rebuilt.value == fname:
                mapping = dict(zip(params, rebuilt.args))
                return substitute_simplifying(body, mapping)
            return rebuilt

        return rewrite(goal)

    def run_script(self, goal: Term, script: ProofScript) -> ProofResult:
        goals = [goal]
        for tactic in script.tactics:
            goals = tactic.apply(goals, self)
        for g in goals:
            result = self.auto.prove(g)
            if not result.proved:
                return ProofResult(
                    False, "interactive-failed",
                    detail=f"script {script.name}: subgoal not closed "
                           f"({result.method})")
        return ProofResult(True, "interactive",
                           detail=f"script {script.name}, "
                                  f"{script.steps} steps, "
                                  f"{len(goals)} subgoals")
