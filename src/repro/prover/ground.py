"""Ground evaluation of closed terms.

Evaluates terms with no free variables to concrete values, consulting the
package's constant pool for table applications (``Te0(i)``) and running the
concrete interpreter for applications of defined functions.  This is the
workhorse behind proof-by-evaluation: byte-domain lemmas in the implication
proof are discharged by evaluating both sides over the whole domain.
"""

from __future__ import annotations

from typing import Dict, Optional

from ..lang import Interpreter, TypedPackage
from ..lang.errors import MiniAdaError
from ..logic import Term

__all__ = ["GroundEvaluator"]

_MAX_SHIFT = 1 << 20


class GroundEvaluator:
    """Evaluates closed terms; returns None when a term is not closed or
    not evaluable (unknown function, runtime fault, absurd shift)."""

    def __init__(self, typed: Optional[TypedPackage] = None,
                 step_limit: int = 2_000_000):
        self.typed = typed
        self._interp = Interpreter(typed, step_limit=step_limit,
                                   check_asserts=False) if typed else None
        self._cache: Dict[int, object] = {}

    def evaluate(self, term: Term):
        hit = self._cache.get(term._id, _MISS)
        if hit is not _MISS:
            return hit
        value = self._eval(term)
        self._cache[term._id] = value
        return value

    def _eval(self, term: Term):
        op = term.op
        if op in ("int", "bool"):
            return term.value
        if op == "var":
            return None
        args = []
        for a in term.args:
            v = self.evaluate(a)
            if v is None and op != "ite":
                return None
            args.append(v)
        if op == "and":
            return all(args)
        if op == "or":
            return any(args)
        if op == "not":
            return not args[0]
        if op == "implies":
            return (not args[0]) or args[1]
        if op == "iff":
            return args[0] == args[1]
        if op == "ite":
            cond = args[0]
            if cond is None:
                return None
            return args[1] if cond else args[2]
        if op == "eq":
            return args[0] == args[1]
        if op == "lt":
            return args[0] < args[1]
        if op == "le":
            return args[0] <= args[1]
        if op == "add":
            return sum(args)
        if op == "mul":
            out = 1
            for v in args:
                out *= v
            return out
        if op == "sub":
            return args[0] - args[1]
        if op == "div":
            if args[1] == 0:
                return None
            quotient = abs(args[0]) // abs(args[1])
            if (args[0] < 0) != (args[1] < 0):
                quotient = -quotient
            return quotient
        if op == "mod":
            if args[1] == 0:
                return None
            return args[0] % args[1]
        if op == "xor":
            out = 0
            for v in args:
                out ^= v
            return out
        if op == "band":
            out = -1
            for v in args:
                out &= v
            return out
        if op == "bor":
            out = 0
            for v in args:
                out |= v
            return out
        if op == "bnot":
            return args[0] ^ ((1 << term.value) - 1)
        if op == "shl":
            if not (0 <= args[1] <= _MAX_SHIFT):
                return None
            return args[0] << args[1]
        if op == "shr":
            if args[1] < 0:
                return None
            return args[0] >> args[1]
        if op == "select":
            arr, idx = args
            if isinstance(arr, (list, tuple)) and 0 <= idx < len(arr):
                return arr[idx]
            return None
        if op == "store":
            arr, idx, val = args
            if isinstance(arr, (list, tuple)) and 0 <= idx < len(arr):
                out = list(arr)
                out[idx] = val
                return out
            return None
        if op == "apply":
            return self._eval_apply(term, args)
        return None

    def _eval_apply(self, term: Term, args):
        if self.typed is None:
            return None
        const = self.typed.constants.get(term.value)
        if const is not None:
            table = const[1]
            if isinstance(table, tuple) and len(args) == 1 and \
                    isinstance(args[0], int) and 0 <= args[0] < len(table):
                return table[args[0]]
            return None
        sig = self.typed.signatures.get(term.value)
        if sig is not None and sig.is_function:
            try:
                return self._interp.call_function(term.value, args)
            except MiniAdaError:
                return None
        return None  # proof functions have no executable body


class _Miss:
    pass


_MISS = _Miss()
