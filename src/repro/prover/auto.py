"""The automatic prover.

Combines, in order of increasing cost:

1. rewriting/simplification (shared with the simplifier);
2. ground evaluation of closed conclusions;
3. interval arithmetic over hypothesis-derived environments;
4. congruence closure over hypothesis equalities;
5. axiom instantiation (function contracts and ``--# rule`` proof rules,
   triggered by matching applications in the VC);
6. bounded case splitting on disjunctive hypotheses and small quantified
   conclusions.

Anything this prover cannot discharge is, by definition, "interactive" --
the boundary the paper's 86.6%-automatic figure measures.
"""

from __future__ import annotations

import dataclasses
import time
import weakref
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..lang import TypedPackage, ast
from ..logic import (
    FALSE, TRUE, Term, conj, eq, implies, intc, neg, substitute_simplifying,
    var,
)
from ..vcgen.simplifier import Simplifier, TypeBoundHook, simplifier_rules_key
from ..vcgen.translate import TranslationContext, translate_expr
from ..vcgen.wp import Obligation
from .congruence import CongruenceClosure
from .ground import GroundEvaluator
from .linarith import build_dbm, env_decide, harvest_env

__all__ = ["ProofResult", "AutoProver", "package_axioms", "Axiom"]

_MAX_INSTANTIATIONS = 400
_MAX_FORALL_INSTANCES = 64
_CASE_SPLIT_DEPTH = 9


@dataclass(frozen=True)
class ProofResult:
    proved: bool
    method: str
    detail: str = ""


@dataclass(frozen=True)
class Axiom:
    """A universally quantified fact available to the prover."""

    name: str
    bound: Tuple[str, ...]
    body: Term  # with bound vars free as var(name)


def _rules_context(typed: TypedPackage):
    """A pseudo subprogram context for package-level annotation expressions."""
    from ..lang.typecheck import SubprogramContext
    dummy = ast.Subprogram(name="<rules>", params=(), return_type=None,
                           decls=(), body=())
    return SubprogramContext(typed, dummy)


#: Package axioms are a pure function of the typed package, and prover
#: instances are constructed per VC (instance state is search history;
#: see :class:`AutoProver`), so re-translating every contract and proof
#: rule on each construction would put hundreds of translations on the
#: corpus hot path.  Weak keys: the memo must not outlive the package.
_AXIOMS_MEMO: "weakref.WeakKeyDictionary" = weakref.WeakKeyDictionary()


def package_axioms(typed: TypedPackage) -> List[Axiom]:
    """Axioms contributed by the package: proof rules and function
    contracts (``pre => post[Result := f(params)]``).  Memoized per
    package object."""
    cached = _AXIOMS_MEMO.get(typed)
    if cached is not None:
        return list(cached)
    axioms = _package_axioms(typed)
    _AXIOMS_MEMO[typed] = tuple(axioms)
    return axioms


def _package_axioms(typed: TypedPackage) -> List[Axiom]:
    axioms: List[Axiom] = []
    for rule in typed.proof_rules:
        rule_sp = ast.Subprogram(name=f"<rule {rule.name}>",
                                 params=rule.params, return_type=None,
                                 decls=(), body=())
        from ..lang.typecheck import SubprogramContext
        rule_ctx = SubprogramContext(typed, rule_sp)
        tc = TranslationContext(typed=typed, ctx=rule_ctx)
        term = translate_expr(tc, rule.expr)
        bound = tuple(p.name for p in rule.params)
        while term.op == "forall":
            bound = bound + term.value
            term = term.args[0]
        axioms.append(Axiom(name=rule.name, bound=bound, body=term))
    for fname, sig in typed.signatures.items():
        if not sig.is_function or not sig.post:
            continue
        fctx = typed.context(fname).runtime_view()
        params = tuple(p.name for p in sig.params)
        state = {p: var(p) for p in params}
        state["Result"] = None  # replaced below
        from ..logic import apply as apply_term
        result_term = apply_term(fname, *(var(p) for p in params))
        state["Result"] = result_term
        hyps = []
        for pre in sig.pre:
            tc = TranslationContext(typed=typed, ctx=fctx, state=dict(state))
            hyps.append(translate_expr(tc, pre))
        for post in sig.post:
            tc = TranslationContext(typed=typed, ctx=fctx, state=dict(state))
            body = translate_expr(tc, post)
            if hyps:
                body = implies(conj(*hyps), body)
            axioms.append(Axiom(name=f"{fname}.contract", bound=params,
                                body=body))
    return axioms


def _match(pattern: Term, term: Term, bound: frozenset,
           binding: Dict[str, Term]) -> bool:
    if pattern.op == "var" and pattern.value in bound:
        existing = binding.get(pattern.value)
        if existing is None:
            binding[pattern.value] = term
            return True
        return existing is term
    if pattern.op != term.op or pattern.value != term.value:
        return False
    if len(pattern.args) != len(term.args):
        return False
    return all(_match(p, t, bound, binding)
               for p, t in zip(pattern.args, term.args))


def _rule_select_store_split(term: Term) -> Optional[Term]:
    """select(store(a, i, v), k) -> ite(i = k, v, a[k]) for undecided
    indices.  Prover-side only: the examiner's simplifier must not apply it
    because it inflates the reported simplified-VC sizes."""
    from ..logic import ite, select as select_
    if term.op != "select":
        return None
    arr, idx = term.args
    if arr.op != "store":
        return None
    base, widx, wval = arr.args
    return ite(eq(widx, idx), wval, select_(base, idx))


class _ProveTimeout(Exception):
    pass


class AutoProver:
    def __init__(self, typed: Optional[TypedPackage] = None,
                 subprogram_name: Optional[str] = None,
                 extra_axioms: Sequence[Axiom] = (),
                 instantiation_rounds: int = 2,
                 ground: Optional[GroundEvaluator] = None,
                 timeout_seconds: Optional[float] = None,
                 hook=None,
                 shared=None):
        """``shared`` is an optional :class:`~repro.logic.normcache
        .NormalizationCache` carrying subterm normal forms across the VCs
        of a proof session (scoped per rule set, so the prover's extra
        rules never mix with the plain simplifier's entries).  It is only
        consulted when the type-bound hook is the canonical one derived
        from ``(typed, subprogram_name)`` -- a caller-supplied ``hook``
        changes normal forms in ways the scope key cannot see.

        An instance accumulates *search history* -- the fresh-name
        counter behind ``_forall_intro`` and the per-term memo caches --
        so proving a second goal on the same instance can take a
        different trajectory than proving it on a fresh one (fresh
        variable names feed fingerprints, and fingerprints order
        commutative arguments).  Callers that need verdicts independent
        of what else ran in the process (the proof session, the farm's
        workers) construct one prover per VC; the ``shared``
        normalization cache is the part that is safe to share, because
        a cached normal form is a pure function of (rules, term)."""
        self.typed = typed
        custom_hook = hook is not None
        if custom_hook:
            self.hook = hook
        else:
            self.hook = TypeBoundHook(typed, subprogram_name) \
                if (typed is not None and subprogram_name) else None
        self.ground = ground if ground is not None else GroundEvaluator(typed)
        self.axioms = (package_axioms(typed) if typed is not None else []) \
            + list(extra_axioms)
        self.instantiation_rounds = instantiation_rounds
        self.subprogram_name = subprogram_name
        self.timeout_seconds = timeout_seconds
        self._deadline: Optional[float] = None
        from ..logic import Rewriter, Rule, default_rules
        self._shared = shared if (not custom_hook and typed is not None
                                  and subprogram_name) else None
        scope = None
        if self._shared is not None:
            scope = self._shared.scope(simplifier_rules_key(
                typed, subprogram_name, extra="prover"))
        self._rewriter = Rewriter(
            default_rules(hook=self.hook)
            + [Rule("select-store-split", "arrays-prover",
                    _rule_select_store_split,
                    ops=frozenset({"select"}))],
            shared=scope)
        self._fresh = 0
        # Per-term memo caches: the case-splitting search revisits the same
        # hypothesis terms many times.
        self._cand_cache: Dict[int, list] = {}
        self._apply_cache: Dict[int, list] = {}
        self._inst_cache: Dict[tuple, Term] = {}
        # Hot-path counters accumulated from the per-VC simplifiers
        # (each _prove call builds and discards one).
        self._hotpath = {"index_hits": 0, "index_skipped_rules": 0,
                         "cross_vc_hits": 0}

    def hotpath_counters(self) -> Dict[str, int]:
        """Aggregated instrumentation across everything this prover
        rewrote: its own rewriter plus every per-VC simplifier."""
        stats = self._rewriter.stats
        acc = self._hotpath
        return {
            "index_hits": acc["index_hits"] + stats.index_hits,
            "index_skipped_rules": (acc["index_skipped_rules"]
                                    + stats.index_skipped_rules),
            "cross_vc_hits": acc["cross_vc_hits"] + stats.cross_vc_hits,
        }

    def _candidates_of(self, terms) -> list:
        out = []
        seen = set()
        for t in terms:
            per = self._cand_cache.get(t._id)
            if per is None:
                per = _index_candidates([t])
                self._cand_cache[t._id] = per
            for c in per:
                if c._id not in seen:
                    seen.add(c._id)
                    out.append(c)
                    if len(out) >= _MAX_INDEX_CANDIDATES:
                        return out
        return out

    def _ground_applies_of(self, terms) -> list:
        out = []
        seen = set()
        for t in terms:
            per = self._apply_cache.get(t._id)
            if per is None:
                per = _collect_ground_applies([t], self.ground)
                self._apply_cache[t._id] = per
            for pair in per:
                if pair[0]._id not in seen:
                    seen.add(pair[0]._id)
                    out.append(pair)
        return out

    def _instantiate_forall(self, h: Term, cand: Term):
        key = (h._id, cand._id)
        hit = self._inst_cache.get(key)
        if hit is None:
            name = h.value[0]
            fact = substitute_simplifying(h.args[0], {name: cand})
            hit = self._rewriter.normalize(fact)
            self._inst_cache[key] = hit
        return hit

    # -- public -------------------------------------------------------------

    def prove(self, term: Term) -> ProofResult:
        if self.timeout_seconds is not None:
            self._deadline = time.monotonic() + self.timeout_seconds
        try:
            return self._prove(term)
        except _ProveTimeout:
            return ProofResult(False, "timeout",
                               detail=f"gave up after "
                                      f"{self.timeout_seconds}s")
        finally:
            self._deadline = None

    def _prove(self, term: Term) -> ProofResult:
        if self.typed is not None and self.subprogram_name is not None:
            simplifier = Simplifier(self.typed, self.subprogram_name,
                                    shared=self._shared)
            simplified = simplifier.simplify(
                Obligation(kind="goal", term=term)).simplified
            acc = self._hotpath
            acc["index_hits"] += simplifier.index_hits
            acc["index_skipped_rules"] += simplifier.index_skipped_rules
            acc["cross_vc_hits"] += simplifier.cross_vc_hits
        else:
            simplified = term
        if simplified.is_true:
            return ProofResult(True, "simplifier")
        simplified = self._rewriter.normalize(simplified)
        if simplified.is_true:
            return ProofResult(True, "rewriting")
        hyps, concl = _split(simplified)
        return self._attempt(list(hyps), concl, depth=0,
                             rounds=self.instantiation_rounds)

    def prove_obligation(self, obligation: Obligation) -> ProofResult:
        return self.prove(obligation.term)

    # -- core loop ------------------------------------------------------------

    def _attempt(self, hyps: List[Term], concl: Term, depth: int,
                 rounds: int) -> ProofResult:
        result = self._attempt_core(hyps, concl, depth)
        if result.proved:
            return result
        for round_no in range(rounds):
            facts = self._instantiate(hyps, concl)
            new = [f for f in facts if f not in hyps]
            if not new:
                break
            hyps = hyps + new
            result = self._attempt_core(hyps, concl, depth)
            if result.proved:
                return ProofResult(True, f"instantiate+{result.method}",
                                   detail=f"round {round_no + 1}")
        return result

    def _attempt_core(self, hyps: List[Term], concl: Term,
                      depth: int) -> ProofResult:
        if self._deadline is not None and time.monotonic() > self._deadline:
            raise _ProveTimeout()
        if concl.is_true:
            return ProofResult(True, "trivial")
        if concl.op == "and":
            methods = []
            for part in concl.args:
                r = self._attempt_core(hyps, part, depth)
                if not r.proved:
                    return r
                methods.append(r.method)
            return ProofResult(True, "conj", detail=",".join(set(methods)))
        if concl.op == "implies":
            extra, inner = _split(concl)
            return self._attempt_core(hyps + list(extra), inner, depth)
        if concl.op == "or" and depth < _CASE_SPLIT_DEPTH:
            # Prove a disjunction by proving one disjunct under the negation
            # of the others.
            for i, disjunct in enumerate(concl.args):
                others = [neg(d) for j, d in enumerate(concl.args) if j != i]
                if self._attempt_core(hyps + others, disjunct,
                                      depth + 1).proved:
                    return ProofResult(True, "disj")
        if concl.op == "forall":
            # Exhaustive expansion over small literal ranges first (cheap:
            # literal indices resolve select/store chains outright), then
            # universal introduction with fresh names.
            expanded = self._expand_forall(concl)
            if expanded is not None:
                result = self._attempt_core(hyps, expanded, depth)
                if result.proved:
                    return result
            intro = self._forall_intro(concl)
            if intro is not None:
                guards, body = intro
                result = self._attempt_core(hyps + guards, body, depth)
                if result.proved:
                    return ProofResult(True, f"intro+{result.method}")
            return ProofResult(False, "none")

        # Ground evaluation.
        value = self.ground.evaluate(concl)
        if value is True:
            return ProofResult(True, "ground")
        if value is False and not hyps:
            return ProofResult(False, "ground-false",
                               detail="conclusion evaluates to false")

        # Instantiate universally quantified hypotheses at the index terms
        # the conclusion mentions (select indices, apply arguments,
        # introduced bound variables).
        flat_hyps = _flatten_hyps(hyps)
        candidates = self._candidates_of(flat_hyps + [concl])
        instantiated: List[Term] = []
        for h in flat_hyps:
            if h.op != "forall" or len(h.value) != 1:
                continue
            per_hyp = list(candidates)
            # A quantified hypothesis over a small literal range is
            # instantiated over the whole range -- candidates harvested
            # from the conclusion miss bound values that only occur inside
            # affine index expressions.
            body = h.args[0]
            if body.op == "implies":
                span = _literal_range(body.args[0], h.value[0])
                if span is not None and span[1] - span[0] < 16:
                    per_hyp += [intc(k)
                                for k in range(span[0], span[1] + 1)]
            for cand in per_hyp:
                fact = self._instantiate_forall(h, cand)
                if not fact.is_true:
                    instantiated.append(fact)
        if instantiated:
            flat_hyps = _flatten_hyps(flat_hyps + instantiated)

        # Split instantiated guarded facts (guard -> fact with provable
        # guard) into usable hypotheses.
        plain = [h for h in flat_hyps if h.op != "implies"]
        env0 = self._env_with_hook_bounds(plain + [concl],
                                          harvest_env(plain, hook=self.hook))
        dbm0 = build_dbm(plain, var_bounds=env0)
        usable: List[Term] = []
        for h in flat_hyps:
            if h.op == "implies":
                guard, body = h.args
                if self._guard_holds(guard, env0, dbm0):
                    usable.append(body)
                    continue
            usable.append(h)
        flat_hyps = _flatten_hyps(usable)

        # Hypothesis contradiction / intervals / difference bounds.
        env = harvest_env(flat_hyps, hook=self.hook)
        for h in flat_hyps:
            hv = self.ground.evaluate(h)
            if hv is False:
                return ProofResult(True, "contradiction",
                                   detail="false hypothesis")
        decided = env_decide(concl, env, hook=self.hook)
        if decided is True:
            return ProofResult(True, "interval")
        env_full = self._env_with_hook_bounds(flat_hyps + [concl], env)
        dbm = build_dbm(flat_hyps, var_bounds=env_full)
        if dbm.decide(concl) is True:
            return ProofResult(True, "difference-bounds")

        # Congruence closure, seeded with ground values of applications.
        cc = CongruenceClosure()
        for node in self._ground_applies_of(flat_hyps + [concl]):
            cc.assert_equal(node[0], node[1])
        for h in flat_hyps:
            if h.op == "eq":
                cc.assert_equal(h.args[0], h.args[1])
            elif h.op == "not" and h.args[0].op == "eq":
                cc.assert_disequal(h.args[0].args[0], h.args[0].args[1])
            elif h.op == "iff":
                cc.assert_equal(h.args[0], h.args[1])
            elif h.op not in ("lt", "le", "or", "forall"):
                cc.assert_equal(h, TRUE)
        if cc.contradiction:
            return ProofResult(True, "congruence",
                               detail="contradictory hypotheses")
        if concl.op == "eq" and cc.are_equal(concl.args[0], concl.args[1]):
            return ProofResult(True, "congruence")
        if concl.op == "not" and concl.args[0].op == "eq" and \
                cc.are_disequal(concl.args[0].args[0], concl.args[0].args[1]):
            return ProofResult(True, "congruence")
        if cc.are_equal(concl, TRUE):
            return ProofResult(True, "congruence")

        # Bounded case split on a disjunctive hypothesis (only ones
        # sharing variables with the conclusion are worth splitting).
        if depth < _CASE_SPLIT_DEPTH:
            concl_vars = concl.free_vars()
            for i, h in enumerate(flat_hyps):
                if h.op == "or" and len(h.args) <= 4 and \
                        (h.free_vars() & concl_vars):
                    rest = flat_hyps[:i] + flat_hyps[i + 1:]
                    if all(self._attempt_core(rest + [d], concl, depth + 1
                                              ).proved
                           for d in h.args):
                        return ProofResult(True, "split")
            if concl.op == "ite":
                c, t, e = concl.args
                if self._attempt_core(flat_hyps + [c], t, depth + 1).proved \
                        and self._attempt_core(flat_hyps + [neg(c)], e,
                                               depth + 1).proved:
                    return ProofResult(True, "split")
            # Case split on an ite *subterm* of the conclusion (arises from
            # select-over-store splitting under quantifiers).
            ite_node = _first_ite(concl)
            if ite_node is not None:
                c, t, e = ite_node.args
                then_concl = _replace_node(concl, ite_node, t)
                else_concl = _replace_node(concl, ite_node, e)
                if self._attempt_core(flat_hyps + [c], then_concl,
                                      depth + 1).proved and \
                        self._attempt_core(flat_hyps + [neg(c)], else_concl,
                                           depth + 1).proved:
                    return ProofResult(True, "split-ite")

        return ProofResult(False, "none")

    def _env_with_hook_bounds(self, terms, env):
        """Augment a hypothesis-derived environment with type-derived
        (hook) bounds for every free variable -- the rewriter may have
        erased type-implied hypotheses as trivially true, but the
        difference-bound engine still needs the bounds."""
        if self.hook is None:
            return env
        out = dict(env)
        for t in terms:
            for name in t.free_vars():
                if name in out:
                    continue
                bounds = self.hook(var(name))
                if bounds is not None:
                    out[name] = bounds
        return out

    def _guard_holds(self, guard: Term, env, dbm) -> bool:
        parts = guard.args if guard.op == "and" else (guard,)
        for part in parts:
            if self.ground.evaluate(part) is True:
                continue
            if env_decide(part, env, hook=self.hook) is True:
                continue
            if dbm.decide(part) is True:
                continue
            return False
        return True

    # -- quantifier handling -----------------------------------------------------

    def _forall_intro(self, term: Term
                      ) -> Optional[Tuple[List[Term], Term]]:
        """Universal introduction: rename bound vars fresh, return the range
        guards as hypotheses plus the body."""
        from ..logic import substitute
        self._fresh += 1
        mapping = {name: var(f"{name}!{self._fresh}") for name in term.value}
        body = substitute(term.args[0], mapping)
        guards: List[Term] = []
        while body.op == "implies":
            guard, body = body.args
            guards.extend(guard.args if guard.op == "and" else [guard])
        return guards, body

    def _expand_forall(self, term: Term) -> Optional[Term]:
        """Expand ``forall k: (lo <= k <= hi) -> body`` over a small literal
        range into a conjunction."""
        body = term.args[0]
        if body.op != "implies" or len(term.value) != 1:
            return None
        name = term.value[0]
        guard, inner = body.args
        bounds = _literal_range(guard, name)
        if bounds is None:
            return None
        lo, hi = bounds
        if hi - lo + 1 > _MAX_FORALL_INSTANCES:
            return None
        parts = [substitute_simplifying(inner, {name: intc(k)})
                 for k in range(lo, hi + 1)]
        return conj(*parts)

    # -- axiom instantiation -----------------------------------------------------

    def _instantiate(self, hyps: List[Term], concl: Term) -> List[Term]:
        applications = _collect_applies(hyps + [concl])
        facts: List[Term] = []
        for axiom in self.axioms:
            if not axiom.bound:
                facts.append(axiom.body)
                continue
            bound = frozenset(axiom.bound)
            patterns = [t
                        for group in _collect_applies([axiom.body]).values()
                        for t in group
                        if any(v in bound
                               for a in t.args for v in a.free_vars())]
            for pattern in patterns:
                for target in applications.get(pattern.value, []):
                    binding: Dict[str, Term] = {}
                    if len(pattern.args) != len(target.args):
                        continue
                    if all(_match(p, t, bound, binding)
                           for p, t in zip(pattern.args, target.args)):
                        if set(binding) == set(axiom.bound):
                            fact = substitute_simplifying(axiom.body, binding)
                            facts.append(fact)
                            if len(facts) >= _MAX_INSTANTIATIONS:
                                return facts
        return facts


def _split(term: Term) -> Tuple[Tuple[Term, ...], Term]:
    """Split nested implications into (hypotheses, conclusion)."""
    hyps: List[Term] = []
    while term.op == "implies":
        h, term = term.args
        if h.op == "and":
            hyps.extend(h.args)
        else:
            hyps.append(h)
    return tuple(hyps), term


def _flatten_hyps(hyps: Sequence[Term]) -> List[Term]:
    out: List[Term] = []
    for h in hyps:
        if h.op == "and":
            out.extend(h.args)
        else:
            out.append(h)
    return out


def _literal_range(guard: Term, name: str) -> Optional[Tuple[int, int]]:
    lo = hi = None
    parts = guard.args if guard.op == "and" else (guard,)
    for part in parts:
        if part.op == "le":
            a, b = part.args
            if a.op == "int" and b.op == "var" and b.value == name:
                lo = a.value
            elif b.op == "int" and a.op == "var" and a.value == name:
                hi = b.value
    if lo is None or hi is None:
        return None
    return lo, hi


def _first_ite(term: Term) -> Optional[Term]:
    for node in term.iter_dag():
        if node.op == "ite":
            return node
    return None


def _replace_node(term: Term, target: Term, replacement: Term) -> Term:
    from ..logic import rebuild_smart
    cache: Dict[int, Term] = {target._id: replacement}

    def go(node: Term) -> Term:
        hit = cache.get(node._id)
        if hit is not None:
            return hit
        if not node.args:
            cache[node._id] = node
            return node
        new_args = tuple(go(a) for a in node.args)
        if all(n is o for n, o in zip(new_args, node.args)):
            out = node
        else:
            out = rebuild_smart(node.op, new_args, node.value)
        cache[node._id] = out
        return out

    return go(term)


_MAX_INDEX_CANDIDATES = 48


def _index_candidates(terms: Sequence[Term]) -> List[Term]:
    """Terms worth instantiating quantified hypotheses at: indices of
    selects/stores and arguments of unary applications."""
    out: List[Term] = []
    seen = set()

    def note(t: Term):
        if t._id not in seen and len(out) < _MAX_INDEX_CANDIDATES:
            seen.add(t._id)
            out.append(t)

    for t in terms:
        for node in t.iter_dag():
            if node.op == "select":
                note(node.args[1])
            elif node.op == "store":
                note(node.args[1])
            elif node.op == "apply" and len(node.args) == 1:
                note(node.args[0])
            elif node.op == "var" and "!" in str(node.value):
                note(node)
    return out


def _collect_ground_applies(terms: Sequence[Term], ground) -> List[Tuple]:
    """(application term, literal value) pairs for congruence seeding."""
    from ..logic import boolc, intc as intc_
    out = []
    seen = set()
    for t in terms:
        for node in t.iter_dag():
            if node.op == "apply" and node._id not in seen:
                seen.add(node._id)
                value = ground.evaluate(node)
                if isinstance(value, bool):
                    out.append((node, boolc(value)))
                elif isinstance(value, int):
                    out.append((node, intc_(value)))
    return out


def _collect_applies(terms: Sequence[Term]) -> Dict[str, List[Term]]:
    out: Dict[str, List[Term]] = {}
    seen = set()
    for t in terms:
        for node in t.iter_dag():
            if node.op == "apply" and node._id not in seen:
                seen.add(node._id)
                out.setdefault(node.value, []).append(node)
    return out
