"""Congruence closure over hash-consed terms.

Standard union-find with congruence propagation: asserting ``a = b`` merges
classes and re-congruences parent applications.  Used by the automatic
prover to discharge equality conclusions from equality hypotheses -- the
kind of reasoning SPADE's proof checker applies to `element/update` facts.

Disequalities are tracked so a contradictory hypothesis set is detected
(making any conclusion provable).
"""

from __future__ import annotations

from typing import Dict, List, Set, Tuple

from ..logic import Term, mk

__all__ = ["CongruenceClosure"]


class CongruenceClosure:
    def __init__(self):
        self._parent: Dict[int, int] = {}
        self._terms: Dict[int, Term] = {}
        self._uses: Dict[int, List[Term]] = {}
        self._diseq: List[Tuple[int, int]] = []
        self._contradiction = False
        self._dirty = False

    @property
    def contradiction(self) -> bool:
        self._settle()
        return self._contradiction

    def _settle(self):
        """Congruence propagation is batched: merges mark the structure
        dirty and one fixpoint pass runs before the next query."""
        if self._dirty:
            self._dirty = False
            self._recongruence()
            self._check_contradictions()

    # -- union-find -------------------------------------------------------

    def _register(self, term: Term):
        if term._id in self._parent:
            return
        self._dirty = True  # a new node may be congruent to an old class
        self._parent[term._id] = term._id
        self._terms[term._id] = term
        for child in term.args:
            self._register(child)
            self._uses.setdefault(self._find(child._id), []).append(term)

    def _find(self, ident: int) -> int:
        root = ident
        while self._parent[root] != root:
            root = self._parent[root]
        while self._parent[ident] != root:
            self._parent[ident], ident = root, self._parent[ident]
        return root

    def _signature(self, term: Term) -> Tuple:
        return (term.op, term.value,
                tuple(self._find(a._id) for a in term.args))

    # -- public api ---------------------------------------------------------

    def add_term(self, term: Term):
        self._register(term)
        self._dirty = True

    def assert_equal(self, a: Term, b: Term):
        self._register(a)
        self._register(b)
        self._merge(a._id, b._id)
        self._dirty = True

    def assert_disequal(self, a: Term, b: Term):
        self._register(a)
        self._register(b)
        self._diseq.append((a._id, b._id))
        self._dirty = True

    def are_equal(self, a: Term, b: Term) -> bool:
        if a is b:
            return True
        self._register(a)
        self._register(b)
        self._settle()
        if self._find(a._id) == self._find(b._id):
            return True
        # Distinct literals in the same class would be a contradiction, but
        # distinct literal *roots* prove disequality, not equality.
        return False

    def are_disequal(self, a: Term, b: Term) -> bool:
        self._register(a)
        self._register(b)
        self._settle()
        ra, rb = self._find(a._id), self._find(b._id)
        la, lb = self._class_literal(ra), self._class_literal(rb)
        if la is not None and lb is not None and la != lb:
            return True
        for x, y in self._diseq:
            fx, fy = self._find(x), self._find(y)
            if (fx, fy) in ((ra, rb), (rb, ra)):
                return True
        return False

    # -- internals ---------------------------------------------------------

    def _class_literal(self, root: int):
        term = self._terms[root]
        if term.is_literal:
            return term.value
        # Another member might be the literal; scan lazily.
        for ident, t in self._terms.items():
            if self._find(ident) == root and t.is_literal:
                return t.value
        return None

    def _merge(self, a: int, b: int):
        ra, rb = self._find(a), self._find(b)
        if ra == rb:
            return
        # Prefer keeping a literal as the representative.
        if self._terms[ra].is_literal:
            ra, rb = rb, ra
        self._parent[ra] = rb
        self._uses.setdefault(rb, []).extend(self._uses.pop(ra, []))

    def _recongruence(self):
        changed = True
        while changed:
            changed = False
            by_signature: Dict[Tuple, int] = {}
            for ident in list(self._parent):
                term = self._terms[ident]
                if not term.args:
                    continue
                sig = self._signature(term)
                other = by_signature.get(sig)
                if other is None:
                    by_signature[sig] = ident
                elif self._find(other) != self._find(ident):
                    self._merge(other, ident)
                    changed = True

    def _check_contradictions(self):
        for x, y in self._diseq:
            if self._find(x) == self._find(y):
                self._contradiction = True
                return
        # Two distinct literals in one class.
        literal_roots: Dict[int, object] = {}
        for ident, term in self._terms.items():
            if term.is_literal:
                root = self._find(ident)
                prior = literal_roots.get(root)
                if prior is not None and prior != term.value:
                    self._contradiction = True
                    return
                literal_roots[root] = term.value
