"""Interval-based linear arithmetic for the automatic prover.

Harvests variable bounds from hypothesis relations into an environment and
iterates to a fixpoint (an equality ``x = e`` propagates the interval of
``e`` into ``x``, which may tighten other terms, and so on).  Decision is
then delegated to :func:`repro.logic.rules.decide_relation` with the
environment plus the type-bound hook.

This is deliberately *interval* arithmetic, not a simplex: the VCs MiniAda
programs generate (index bounds, range checks, loop counters) are interval
problems, and keeping the engine simple keeps the automatic/interactive
boundary honest.
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional

from ..logic import Term
from ..logic.rules import Interval, interval_of

__all__ = ["harvest_env", "env_decide", "DifferenceBounds", "build_dbm"]

_FIXPOINT_ROUNDS = 4


def _tighten(env: Dict[str, Interval], name: str,
             lo: Optional[int], hi: Optional[int]) -> bool:
    old_lo, old_hi = env.get(name, (None, None))
    new_lo = old_lo if lo is None else (lo if old_lo is None else max(lo, old_lo))
    new_hi = old_hi if hi is None else (hi if old_hi is None else min(hi, old_hi))
    if (new_lo, new_hi) != (old_lo, old_hi):
        env[name] = (new_lo, new_hi)
        return True
    return False


def harvest_env(hypotheses: Iterable[Term], hook=None
                ) -> Dict[str, Interval]:
    """Fixpoint interval environment from hypothesis relations."""
    hyps = list(hypotheses)
    env: Dict[str, Interval] = {}
    for _ in range(_FIXPOINT_ROUNDS):
        changed = False
        for h in hyps:
            changed |= _harvest_one(h, env, hook)
        if not changed:
            break
    return env


def _harvest_one(h: Term, env: Dict[str, Interval], hook) -> bool:
    changed = False
    if h.op == "and":
        for part in h.args:
            changed |= _harvest_one(part, env, hook)
        return changed
    if h.op == "eq":
        a, b = h.args
        if b.op == "var":
            a, b = b, a
        if a.op == "var":
            lo, hi = interval_of(b, env, hook=hook)
            changed |= _tighten(env, a.value, lo, hi)
            if b.op == "var":  # propagate both directions for var = var
                lo2, hi2 = env.get(a.value, (None, None))
                changed |= _tighten(env, b.value, lo2, hi2)
        return changed
    if h.op == "le":
        a, b = h.args
        if a.op == "var":
            _, bhi = interval_of(b, env, hook=hook)
            changed |= _tighten(env, a.value, None, bhi)
        if b.op == "var":
            alo, _ = interval_of(a, env, hook=hook)
            changed |= _tighten(env, b.value, alo, None)
        return changed
    if h.op == "lt":
        a, b = h.args
        if a.op == "var":
            _, bhi = interval_of(b, env, hook=hook)
            changed |= _tighten(env, a.value, None,
                                None if bhi is None else bhi - 1)
        if b.op == "var":
            alo, _ = interval_of(a, env, hook=hook)
            changed |= _tighten(env, b.value,
                                None if alo is None else alo + 1, None)
        return changed
    if h.op == "not":
        inner = h.args[0]
        if inner.op == "lt":
            return _harvest_one(_flip_le(inner), env, hook)
        if inner.op == "le":
            return _harvest_one(_flip_lt(inner), env, hook)
    return changed


def _flip_le(lt_term: Term) -> Term:
    from ..logic import le
    return le(lt_term.args[1], lt_term.args[0])


def _flip_lt(le_term: Term) -> Term:
    from ..logic import lt
    return lt(le_term.args[1], le_term.args[0])


def env_decide(concl: Term, env: Dict[str, Interval], hook=None
               ) -> Optional[bool]:
    from ..logic.rules import decide_relation
    if concl.op == "not":
        inner = env_decide(concl.args[0], env, hook)
        return None if inner is None else not inner
    return decide_relation(concl, env=env, hook=hook)


# ---------------------------------------------------------------------------
# Difference-bound reasoning
# ---------------------------------------------------------------------------

_ZERO = "<zero>"
_INF = None  # absence of an edge


def _atom(term: Term):
    """Parse ``var``, ``int`` or ``var + literal`` into (node, offset)."""
    if term.op == "int":
        return _ZERO, term.value
    if term.op == "var":
        return term.value, 0
    if term.op == "add":
        var_name = None
        offset = 0
        for a in term.args:
            if a.op == "int":
                offset += a.value
            elif a.op == "var" and var_name is None:
                var_name = a.value
            else:
                return None
        if var_name is None:
            return _ZERO, offset
        return var_name, offset
    return None


class DifferenceBounds:
    """Difference-bound matrix over VC variables.

    Handles the relational facts interval environments cannot: loop-counter
    chains like ``K <= I`` combined with integer disequality tightening
    (``K <= I`` and ``K /= I`` imply ``K <= I - 1``), which every loop
    invariant preservation VC needs.
    """

    def __init__(self):
        self._edges: Dict[tuple, int] = {}
        self._nodes = {_ZERO}
        self._diseqs = []  # (a, b, c): constraint  value(a) - value(b) != c
        self.contradiction = False
        self._closed = False

    def add_le(self, a: str, b: str, c: int):
        """value(a) - value(b) <= c."""
        self._nodes.add(a)
        self._nodes.add(b)
        key = (a, b)
        old = self._edges.get(key)
        if old is None or c < old:
            self._edges[key] = c
            self._closed = False

    def add_hypothesis(self, h: Term) -> bool:
        """Returns True if the hypothesis contributed a constraint."""
        negated = False
        if h.op == "not":
            h, negated = h.args[0], True
        if h.op not in ("le", "lt", "eq"):
            return False
        left = _atom(h.args[0])
        right = _atom(h.args[1])
        if left is None or right is None:
            return False
        (a, ca), (b, cb) = left, right
        op = h.op
        if negated:
            if op == "le":      # not (x <= y)  ->  y < x
                (a, ca), (b, cb), op = (b, cb), (a, ca), "lt"
            elif op == "lt":    # not (x < y)   ->  y <= x
                (a, ca), (b, cb), op = (b, cb), (a, ca), "le"
            else:               # not (x = y)
                self._nodes.update((a, b))
                self._diseqs.append((a, b, cb - ca))
                self._closed = False
                return True
        if op == "le":
            self.add_le(a, b, cb - ca)
        elif op == "lt":
            self.add_le(a, b, cb - ca - 1)
        else:
            self.add_le(a, b, cb - ca)
            self.add_le(b, a, ca - cb)
        return True

    def _close(self):
        if self._closed:
            return
        nodes = sorted(self._nodes)
        dist = dict(self._edges)
        for k in nodes:
            for i in nodes:
                ik = dist.get((i, k))
                if ik is None:
                    continue
                for j in nodes:
                    kj = dist.get((k, j))
                    if kj is None:
                        continue
                    through = ik + kj
                    current = dist.get((i, j))
                    if current is None or through < current:
                        dist[(i, j)] = through
        for n in nodes:
            if dist.get((n, n), 0) < 0:
                self.contradiction = True
        self._edges = dist
        self._closed = True
        # Integer tightening with disequalities: a - b <= c and a - b >= c
        # and a - b /= c is a contradiction; a - b <= c and a - b /= c
        # tightens to <= c - 1.
        tightened = False
        for a, b, c in self._diseqs:
            upper = self._edges.get((a, b))
            lower = self._edges.get((b, a))
            if upper is not None and lower is not None and \
                    upper == c and lower == -c:
                self.contradiction = True
            elif upper is not None and upper == c:
                self._edges[(a, b)] = c - 1
                tightened = True
            elif lower is not None and lower == -c:
                self._edges[(b, a)] = -c - 1
                tightened = True
        if tightened:
            self._closed = False
            self._close()

    def distance(self, a: str, b: str) -> Optional[int]:
        """Tightest known bound on value(a) - value(b)."""
        self._close()
        if a == b:
            return min(self._edges.get((a, b), 0), 0)
        return self._edges.get((a, b))

    def decide(self, concl: Term) -> Optional[bool]:
        """Decide le/lt/eq (or their negations) relative to the constraints."""
        self._close()
        if self.contradiction:
            return True
        if concl.op == "not":
            inner = self.decide(concl.args[0])
            return None if inner is None else not inner
        if concl.op not in ("le", "lt", "eq"):
            return None
        left = _atom(concl.args[0])
        right = _atom(concl.args[1])
        if left is None or right is None:
            return None
        (a, ca), (b, cb) = left, right
        need = cb - ca  # prove a - b <= need (le), <= need - 1 (lt)
        d_ab = self.distance(a, b)
        d_ba = self.distance(b, a)
        if concl.op == "le":
            if d_ab is not None and d_ab <= need:
                return True
            if d_ba is not None and d_ba <= -need - 1:
                return False  # a - b >= need + 1 always
        elif concl.op == "lt":
            if d_ab is not None and d_ab <= need - 1:
                return True
            if d_ba is not None and d_ba <= -need:
                return False
        elif concl.op == "eq":
            if d_ab is not None and d_ba is not None and \
                    d_ab <= need and d_ba <= -need:
                return True
            if (d_ab is not None and d_ab < need) or \
                    (d_ba is not None and d_ba < -need):
                return False
        return None


def build_dbm(hypotheses: Iterable[Term],
              var_bounds: Optional[Dict[str, Interval]] = None
              ) -> DifferenceBounds:
    """DBM from hypotheses plus optional per-variable literal bounds."""
    dbm = DifferenceBounds()
    for h in hypotheses:
        if h.op == "and":
            for part in h.args:
                dbm.add_hypothesis(part)
        else:
            dbm.add_hypothesis(h)
    if var_bounds:
        for name, (lo, hi) in var_bounds.items():
            if hi is not None:
                dbm.add_le(name, _ZERO, hi)
            if lo is not None:
                dbm.add_le(_ZERO, name, -lo)
    return dbm
