"""Provers: automatic (SPADE substitute) and interactive (tactic scripts
standing in for the paper's human guidance).
"""

from .auto import AutoProver, Axiom, ProofResult, package_axioms
from .congruence import CongruenceClosure
from .ground import GroundEvaluator
from .linarith import env_decide, harvest_env
from .session import (
    ImplementationProof, ImplementationProofResult, VCOutcome,
)
from .tactics import (
    Cases, CasesVar, Expand, Extensionality, Instantiate, InteractiveProver,
    Normalize, ProofScript, Tactic,
)

__all__ = [
    "AutoProver", "Axiom", "ProofResult", "package_axioms",
    "CongruenceClosure", "GroundEvaluator", "harvest_env", "env_decide",
    "ImplementationProof", "ImplementationProofResult", "VCOutcome",
    "Tactic", "Expand", "Cases", "CasesVar", "Instantiate", "Extensionality",
    "Normalize", "ProofScript", "InteractiveProver",
]
