"""Verification refactoring: the transformation engine and library
(Stratego/XT substitute; paper sections 5.1-5.2).
"""

from .conditionals import MoveIntoConditional, MoveOutOfConditional
from .datastruct import AdjustDataStructures, UserSpecifiedTransformation
from .engine import (
    Application, RefactoringEngine, Transformation, TransformationError,
    get_block, replace_block,
)
from .inline import ExtractFunction, ExtractProcedureClone, parse_subprogram
from .library import TRANSFORMATION_LIBRARY, category_of, library_categories
from .loopforms import MergeLoopNest, ShiftLoopBounds, SplitLoopNest
from .reroll import RerollLoop
from .separate import SeparateLoop
from .split import SplitProcedure
from .storage import (
    IntroduceIntermediateVariable, RemoveDeadSubprogram,
    RemoveIntermediateVariable, Rename,
)
from .tables import ReverseTableLookup
from .unify import AntiUnifyError, anti_unify_groups

__all__ = [
    "Transformation", "TransformationError", "Application",
    "RefactoringEngine", "get_block", "replace_block",
    "RerollLoop", "MoveIntoConditional", "MoveOutOfConditional",
    "SplitProcedure", "ShiftLoopBounds", "SplitLoopNest", "MergeLoopNest",
    "ExtractFunction", "ExtractProcedureClone", "parse_subprogram",
    "SeparateLoop", "RemoveIntermediateVariable",
    "IntroduceIntermediateVariable", "RemoveDeadSubprogram", "Rename",
    "ReverseTableLookup",
    "AdjustDataStructures", "UserSpecifiedTransformation",
    "TRANSFORMATION_LIBRARY", "library_categories", "category_of",
    "AntiUnifyError", "anti_unify_groups",
]
