"""The transformation engine (Stratego/XT substitute) and its process loop.

A :class:`Transformation` checks applicability mechanically and applies
itself mechanically; the :class:`RefactoringEngine` wraps application with

* re-analysis (type checking) of the transformed package,
* a semantics-preservation theorem per application (section 5.1), checked
  on the engine's *observable* subprograms -- the package interface whose
  behaviour refactoring must preserve,
* a history of snapshots (the paper: "removing a transformation is made
  possible by recording the software's state prior to the application of
  each transformation").

Statement addressing: many transformations target a *block* -- a statement
sequence inside a subprogram body.  A block path is a tuple of steps from
the body: an integer descends into that statement (a For/While body), and
``("then", k)`` / ``("else",)`` descend into branch ``k`` / the else arm of
an If.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterator, List, Optional, Sequence, Tuple

from ..equiv import EquivalenceTheorem, prove_equivalence
from ..exec.config import ExecConfig, coerce_exec_config, \
    reject_legacy_exec_kwargs
from ..lang import TypedPackage, analyze, ast
from ..lang.errors import TypeError_

__all__ = [
    "TransformationError", "Transformation", "Application",
    "RefactoringEngine", "get_block", "replace_block", "iter_blocks",
    "bound_loop_vars", "names_in",
]


class TransformationError(Exception):
    """The transformation is not applicable (with the reason)."""


# ---------------------------------------------------------------------------
# Block paths
# ---------------------------------------------------------------------------

def get_block(body: Tuple[ast.Stmt, ...],
              path: Sequence = ()) -> Tuple[ast.Stmt, ...]:
    """Resolve a block path to the statement tuple it denotes."""
    block = body
    for step in path:
        if isinstance(step, int):
            stmt = block[step]
            if isinstance(stmt, (ast.For, ast.While)):
                block = stmt.body
            else:
                raise TransformationError(
                    f"path step {step} is not a loop statement")
        elif isinstance(step, tuple) and step and step[0] == "then":
            stmt_index, branch = step[1], step[2]
            stmt = block[stmt_index]
            if not isinstance(stmt, ast.If):
                raise TransformationError("path step expects an if")
            block = stmt.branches[branch][1]
        elif isinstance(step, tuple) and step and step[0] == "else":
            stmt = block[step[1]]
            if not isinstance(stmt, ast.If):
                raise TransformationError("path step expects an if")
            block = stmt.else_body
        else:
            raise TransformationError(f"bad path step {step!r}")
    return block


def replace_block(body: Tuple[ast.Stmt, ...], path: Sequence,
                  new_block: Tuple[ast.Stmt, ...]) -> Tuple[ast.Stmt, ...]:
    """Rebuild ``body`` with the block at ``path`` replaced."""
    if not path:
        return tuple(new_block)
    step, rest = path[0], path[1:]
    out = list(body)
    if isinstance(step, int):
        stmt = body[step]
        if not isinstance(stmt, (ast.For, ast.While)):
            raise TransformationError(f"path step {step} is not a loop")
        out[step] = dataclasses.replace(
            stmt, body=replace_block(stmt.body, rest, new_block))
    elif isinstance(step, tuple) and step[0] == "then":
        stmt_index, branch = step[1], step[2]
        stmt = body[stmt_index]
        branches = list(stmt.branches)
        cond, b = branches[branch]
        branches[branch] = (cond, replace_block(b, rest, new_block))
        out[stmt_index] = dataclasses.replace(stmt, branches=tuple(branches))
    elif isinstance(step, tuple) and step[0] == "else":
        stmt = body[step[1]]
        out[step[1]] = dataclasses.replace(
            stmt, else_body=replace_block(stmt.else_body, rest, new_block))
    else:
        raise TransformationError(f"bad path step {step!r}")
    return tuple(out)


def iter_blocks(body: Tuple[ast.Stmt, ...],
                prefix: Sequence = ()
                ) -> Iterator[Tuple[Tuple, Tuple[ast.Stmt, ...]]]:
    """Yield every addressable ``(path, block)`` of a subprogram body.

    The root block comes first, then nested blocks in statement order
    (loop bodies, then-branches, else-arms), depth-first.  The paths are
    exactly the ones :func:`get_block`/:func:`replace_block` resolve, so
    site enumerators can propose block-path-aware transformations
    without reimplementing the addressing scheme."""
    prefix = tuple(prefix)
    yield prefix, body
    for i, stmt in enumerate(body):
        if isinstance(stmt, (ast.For, ast.While)):
            yield from iter_blocks(stmt.body, prefix + (i,))
        elif isinstance(stmt, ast.If):
            for b, (_cond, branch) in enumerate(stmt.branches):
                yield from iter_blocks(branch, prefix + (("then", i, b),))
            if stmt.else_body:
                yield from iter_blocks(stmt.else_body, prefix + (("else", i),))


def bound_loop_vars(body: Tuple[ast.Stmt, ...], path: Sequence) -> set:
    """The loop variables bound by the ``For`` loops a block path
    descends through.

    A variable introduced *inside* the block at ``path`` must avoid
    these names: loop variables live outside the subprogram's declared
    context, so a context freshness check alone would accept a
    same-named inner loop that silently captures every occurrence of
    the enclosing variable in its body (the program still type-checks,
    it just indexes with the wrong variable)."""
    vars_: set = set()
    block = body
    for step in path:
        if isinstance(step, int):
            stmt = block[step]
            if not isinstance(stmt, (ast.For, ast.While)):
                raise TransformationError(
                    f"path step {step} is not a loop statement")
            if isinstance(stmt, ast.For):
                vars_.add(stmt.var)
            block = stmt.body
        elif isinstance(step, tuple) and step and step[0] == "then":
            block = block[step[1]].branches[step[2]][1]
        elif isinstance(step, tuple) and step and step[0] == "else":
            block = block[step[1]].else_body
        else:
            raise TransformationError(f"bad path step {step!r}")
    return vars_


def names_in(stmts: Sequence[ast.Stmt]) -> set:
    """Every identifier occurring in ``stmts``: variable reads and
    writes (``Name``), loop variables (``For``), and quantified
    variables (``ForAll``).  The complement is what "fresh" has to mean
    for a loop variable wrapped *around* these statements -- a nested
    loop inside them with the same name would capture the new
    variable's occurrences in its body."""
    out: set = set()
    for stmt in stmts:
        for node in ast.walk(stmt):
            if isinstance(node, ast.Name):
                out.add(node.id)
            elif isinstance(node, (ast.For, ast.ForAll)):
                out.add(node.var)
    return out


# ---------------------------------------------------------------------------
# Transformations
# ---------------------------------------------------------------------------

class Transformation:
    """Base class.  Subclasses set ``name`` and ``category`` (one of the
    paper's section 5.1 categories) and implement ``apply``.

    ``apply`` takes the current :class:`TypedPackage` and returns the
    transformed :class:`~repro.lang.ast.Package`; it raises
    :class:`TransformationError` when not applicable (the mechanical
    applicability check)."""

    name: str = "?"
    category: str = "?"
    #: True when the transformation cannot change the set of declared
    #: names, types, or subprogram signatures -- the spec-structure match
    #: ratio of the result equals the input's, so a planner may reuse the
    #: parent state's ratio instead of re-extracting (see repro.plan).
    match_neutral: bool = False

    def apply(self, typed: TypedPackage) -> ast.Package:
        raise NotImplementedError

    def affected_subprograms(self, typed: TypedPackage) -> List[str]:
        """Subprograms whose semantics the theorem must check; default:
        the engine's observables."""
        return []

    def describe(self) -> str:
        return self.name

    @classmethod
    def enumerate_sites(cls, typed: TypedPackage
                        ) -> Iterator["Transformation"]:
        """Yield instances applicable (mechanically, by a cheap
        over-approximation) to ``typed`` -- the site-enumeration hook the
        automated planner (:mod:`repro.plan`) drives.

        The default is the empty enumeration: families whose parameters
        cannot be inferred from the package alone (user-specified
        payloads, extraction templates) stay planner-catalog territory.
        Overrides must be **deterministic** -- ordered by package
        position, never by dict iteration over unordered sets or by
        ``id()`` -- and may over-approximate: every proposal is still
        subject to ``apply``'s full applicability check, re-analysis, and
        the semantics-preservation theorem before it can enter a chain."""
        return iter(())


@dataclass
class Application:
    """Record of one applied transformation (with its theorem)."""

    transformation: str
    category: str
    description: str
    theorems: List[EquivalenceTheorem] = field(default_factory=list)

    @property
    def preserved(self) -> bool:
        return all(t.holds for t in self.theorems)


class RefactoringEngine:
    """Figure-1's Transformer + Transformation Proof Checker.

    ``observables`` are the interface subprograms; each application's
    preservation theorem is discharged on every observable that exists with
    an unchanged signature on both sides.  ``check`` selects the evidence
    budget: ``"full"`` (symbolic, then exhaustive, then differential),
    ``"differential"`` (dynamic only; faster), or ``"none"`` (postpone the
    proof, as section 5.2 explicitly permits)."""

    def __init__(self, package: ast.Package,
                 observables: Sequence[str],
                 check: str = "full",
                 trials: int = 24,
                 seed: int = 20090701,
                 samplers: Optional[dict] = None,
                 exec: Optional[ExecConfig] = None,
                 check_observables: bool = False,
                 **legacy):
        reject_legacy_exec_kwargs("RefactoringEngine", legacy)
        self.typed = analyze(package)
        self.observables = list(observables)
        self.check = check
        #: When True, every application's theorem set always includes the
        #: observables, even if the transformation names narrower affected
        #: subprograms.  The narrow default is the historical pipeline
        #: behavior (cheap, and sound when each family's affected-set is
        #: honest); an automated search that composes hundreds of steps
        #: wants the end-to-end guarantee on every accepted edge instead.
        self.check_observables = check_observables
        self.trials = trials
        self.seed = seed
        #: observable name -> sampler(rng) -> initial state; restricts the
        #: theorem to the meaningful input domain (documented precondition).
        self.samplers = samplers or {}
        self.history: List[Tuple[Application, ast.Package]] = []
        #: obligation-scheduler configuration: differential trials fan out
        #: one obligation per trial when ``jobs > 1`` (see
        #: ``_differential``).
        self.exec = coerce_exec_config(exec, owner="RefactoringEngine")

    @property
    def package(self) -> ast.Package:
        return self.typed.package

    def apply(self, transformation: Transformation) -> Application:
        before = self.typed
        new_package = transformation.apply(before)
        try:
            after = analyze(new_package)
        except TypeError_ as exc:
            raise TransformationError(
                f"{transformation.name}: transformed program does not "
                f"type-check: {exc}")
        if self.check_observables:
            gone = [o for o in self.observables
                    if o in before.signatures and o not in after.signatures]
            if gone:
                # Deleting an observable would make every later check on it
                # vacuous (``_checkable`` can only compare names present on
                # both sides), so an engine holding the full observable
                # interface refuses outright.
                raise TransformationError(
                    f"{transformation.name}: removes observable "
                    f"subprogram(s) {', '.join(gone)}")
        application = Application(
            transformation=transformation.name,
            category=transformation.category,
            description=transformation.describe(),
        )
        if self.check != "none":
            for name in self._checkable(before, after, transformation):
                theorem = self._theorem(before, after, name)
                application.theorems.append(theorem)
                if not theorem.holds:
                    raise TransformationError(
                        f"{transformation.name}: semantics NOT preserved for "
                        f"{name}: {theorem.counterexample}")
        self.history.append((application, before.package))
        self.typed = after
        return application

    def undo(self) -> Application:
        if not self.history:
            raise TransformationError("nothing to undo")
        application, package = self.history.pop()
        self.typed = analyze(package)
        return application

    def enumerate_candidates(self) -> List[Transformation]:
        """Ask every library family for applicable sites on the current
        package (each class's :meth:`Transformation.enumerate_sites`).

        The order is deterministic: families in library-registry order,
        sites in each family's own (package-position) order.  Proposals
        are *candidates*, not commitments -- the planner scores them and
        :meth:`apply` still runs the full applicability check plus the
        semantics-preservation theorem on whichever one is chosen."""
        from .library import TRANSFORMATION_LIBRARY   # circular at module load
        out: List[Transformation] = []
        for classes in TRANSFORMATION_LIBRARY.values():
            for cls in classes:
                out.extend(cls.enumerate_sites(self.typed))
        return out

    # -- internals --------------------------------------------------------

    def _checkable(self, before: TypedPackage, after: TypedPackage,
                   transformation: Transformation) -> List[str]:
        explicit = transformation.affected_subprograms(before)
        names = explicit or self.observables
        if self.check_observables:
            names = list(names) + [o for o in self.observables
                                   if o not in names]
        out = []
        for name in names:
            if name in before.signatures and name in after.signatures:
                b = before.signatures[name]
                a = after.signatures[name]
                if _same_signature(before, b, after, a):
                    out.append(name)
        return out

    def _theorem(self, before: TypedPackage, after: TypedPackage,
                 name: str) -> EquivalenceTheorem:
        sampler = self.samplers.get(name)
        if self.check == "differential":
            from ..equiv.theorem import _from_dynamic
            result = self._differential(before, after, name, sampler)
            return _from_dynamic(result, name, name, "differential",
                                 proved=False)
        return prove_equivalence(before, name, after, name,
                                 trials=self.trials, seed=self.seed,
                                 sampler=sampler)

    def _differential(self, before: TypedPackage, after: TypedPackage,
                      name: str, sampler):
        """Differential check through the obligation scheduler: one
        obligation per trial.

        Initial states are pre-generated serially from the seeded RNG (so
        the state sequence is identical to the historical inline loop),
        then the per-trial comparisons fan out.  With ``jobs=1`` the
        scheduler runs them in order and stops at the first
        counterexample -- exactly the historical work and result; with
        ``jobs>1`` all trials run concurrently and the earliest
        counterexample (by trial index) is reported, so the
        ``DifferentialResult`` is the same either way."""
        import random as _random

        from ..equiv.differential import DifferentialResult, _compare
        from ..equiv.model import input_params, random_state
        from ..exec import EquivTrialPayload, equiv_trial_obligation, \
            package_fingerprint

        sp_before = before.signatures[name]
        sp_after = after.signatures[name]
        if [p.name for p in input_params(sp_before)] != \
                [p.name for p in input_params(sp_after)]:
            raise ValueError(f"signatures differ: {name}")

        rng = _random.Random(self.seed)
        states = [sampler(rng) if sampler is not None
                  else random_state(before, sp_before, rng)
                  for _ in range(self.trials)]

        left_fp = package_fingerprint(before)
        right_fp = package_fingerprint(after)
        obligations = [
            equiv_trial_obligation(
                i, name, state,
                (lambda s=state: _compare(before, name, after, name, s)),
                left_fp=left_fp, right_fp=right_fp,
                payload=EquivTrialPayload(
                    left_package=before.package,
                    right_package=after.package,
                    left_fp=left_fp, right_fp=right_fp,
                    left_name=name, right_name=name,
                    initial=tuple(sorted(state.items()))))
            for i, state in enumerate(states)
        ]
        results = self.exec.scheduler().run(
            obligations,
            stop_on=lambda outcome: outcome.ok and outcome.value is not None)
        for i, outcome in enumerate(results):
            if outcome.ok and outcome.value is not None:
                return DifferentialResult(equivalent=False, trials=i + 1,
                                          counterexample=outcome.value)
        return DifferentialResult(equivalent=True, trials=self.trials)


def _same_structural_type(before: TypedPackage, a_name: str,
                          after: TypedPackage, b_name: str) -> bool:
    """Compare resolved types structurally (a rename of a type does not
    change the observable interface)."""
    from ..lang.types import ArrayType, ModularType, RangeType
    ta = before.types.get(a_name)
    tb = after.types.get(b_name)
    if ta is None or tb is None:
        return a_name == b_name
    if type(ta) is not type(tb):
        return False
    if isinstance(ta, ModularType):
        return ta.modulus == tb.modulus
    if isinstance(ta, RangeType):
        return (ta.lo, ta.hi) == (tb.lo, tb.hi)
    if isinstance(ta, ArrayType):
        return (ta.lo, ta.hi) == (tb.lo, tb.hi) and \
            _structurally_equal(ta.elem, tb.elem)
    return True


def _structurally_equal(ta, tb) -> bool:
    from ..lang.types import ArrayType, ModularType, RangeType
    if type(ta) is not type(tb):
        return False
    if isinstance(ta, ModularType):
        return ta.modulus == tb.modulus
    if isinstance(ta, RangeType):
        return (ta.lo, ta.hi) == (tb.lo, tb.hi)
    if isinstance(ta, ArrayType):
        return (ta.lo, ta.hi) == (tb.lo, tb.hi) and \
            _structurally_equal(ta.elem, tb.elem)
    return True


def _same_signature(before: TypedPackage, b, after: TypedPackage, a) -> bool:
    if len(b.params) != len(a.params):
        return False
    for pb, pa in zip(b.params, a.params):
        if (pb.name, pb.mode) != (pa.name, pa.mode):
            return False
        if not _same_structural_type(before, pb.type_name,
                                     after, pa.type_name):
            return False
    if (b.return_type is None) != (a.return_type is None):
        return False
    if b.return_type is not None and not _same_structural_type(
            before, b.return_type, after, a.return_type):
        return False
    return True
