"""Re-rolling unrolled loops (paper 5.1, "Rerolling loops")."""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Tuple

from ..lang import TypedPackage, ast
from .engine import Transformation, TransformationError, get_block, \
    replace_block
from .unify import AntiUnifyError, anti_unify_groups

__all__ = ["RerollLoop"]


@dataclass
class RerollLoop(Transformation):
    """Turn ``count`` consecutive groups of ``group_size`` statements
    (starting at ``start`` within the block at ``path``) into

        for <var> in 0 .. count-1 loop <template> end loop;

    The template is found by anti-unification; literals must vary affinely
    with the group index.  A defect breaking the repetition pattern makes
    this transformation mechanically inapplicable."""

    subprogram: str
    start: int
    group_size: int
    count: int
    var: str = "I"
    path: Tuple = ()

    name = "reroll-loop"
    category = "rerolling loops"

    def describe(self) -> str:
        return (f"reroll {self.count}x{self.group_size} statements in "
                f"{self.subprogram} at {self.start} into a loop over "
                f"{self.var}")

    def affected_subprograms(self, typed):
        return [self.subprogram]

    def apply(self, typed: TypedPackage) -> ast.Package:
        sp = _subprogram(typed, self.subprogram)
        block = get_block(sp.body, self.path)
        end = self.start + self.group_size * self.count
        if self.start < 0 or end > len(block):
            raise TransformationError(
                f"{self.name}: range {self.start}..{end} outside block of "
                f"{len(block)} statements")
        ctx = typed.context(self.subprogram)
        if ctx.var_type(self.var) is not None:
            raise TransformationError(
                f"{self.name}: loop variable '{self.var}' already in scope")
        groups = [tuple(block[self.start + g * self.group_size:
                              self.start + (g + 1) * self.group_size])
                  for g in range(self.count)]
        try:
            template = anti_unify_groups(groups, self.var)
        except AntiUnifyError as exc:
            raise TransformationError(f"{self.name}: {exc}")
        loop = ast.For(var=self.var, lo=ast.IntLit(value=0),
                       hi=ast.IntLit(value=self.count - 1), body=template)
        new_block = block[:self.start] + (loop,) + block[end:]
        new_body = replace_block(sp.body, self.path, new_block)
        new_sp = dataclasses.replace(sp, body=new_body)
        return typed.package.replace_subprogram(self.subprogram, new_sp)


def _subprogram(typed: TypedPackage, name: str) -> ast.Subprogram:
    try:
        return typed.package.subprogram(name)
    except KeyError:
        raise TransformationError(f"no subprogram named '{name}'")
