"""Re-rolling unrolled loops (paper 5.1, "Rerolling loops")."""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Tuple

from ..lang import TypedPackage, ast
from .engine import Transformation, TransformationError, bound_loop_vars, \
    get_block, iter_blocks, names_in, replace_block
from .unify import AntiUnifyError, anti_unify_groups

__all__ = ["RerollLoop"]

#: Deterministic preference order for fresh loop variables proposed by
#: site enumeration (the first name not already in scope wins).
_FRESH_VARS = ("I", "J", "K", "R", "It", "Ix")

#: Site-enumeration bounds: the largest statement group the run detector
#: tries, and the minimum statements a proposed reroll must cover (below
#: that the loop costs more structure than it removes).
_MAX_GROUP_SIZE = 12
_MIN_COVERAGE = 4


@dataclass
class RerollLoop(Transformation):
    """Turn ``count`` consecutive groups of ``group_size`` statements
    (starting at ``start`` within the block at ``path``) into

        for <var> in 0 .. count-1 loop <template> end loop;

    The template is found by anti-unification; literals must vary affinely
    with the group index.  A defect breaking the repetition pattern makes
    this transformation mechanically inapplicable."""

    subprogram: str
    start: int
    group_size: int
    count: int
    var: str = "I"
    path: Tuple = ()

    name = "reroll-loop"
    category = "rerolling loops"
    match_neutral = True   # body-only: declares no new package element

    @classmethod
    def enumerate_sites(cls, typed: TypedPackage):
        """Propose maximal anti-unifiable runs in every block.

        For each subprogram, block, and group size, scan left to right
        for the longest run of consecutive statement groups that
        anti-unify against a fresh loop variable; emit the run and skip
        past it (left-maximality comes from scanning in order, right-
        maximality from extending until unification fails).  Runs
        covering fewer than ``_MIN_COVERAGE`` statements are noise, not
        unrolled loops."""
        for sp in typed.package.subprograms:
            ctx = typed.context(sp.name)
            for path, block in iter_blocks(sp.body):
                # "Fresh" is per block, not per context: loop variables
                # of enclosing loops (along ``path``) and identifiers
                # already used inside the block are not in the declared
                # context but reusing them would capture -- an inner
                # loop named like its enclosing loop rebinds the outer
                # occurrences in the rerolled statements.
                taken = bound_loop_vars(sp.body, path) | names_in(block)
                var = next((v for v in _FRESH_VARS
                            if ctx.var_type(v) is None and v not in taken),
                           None)
                if var is None:
                    continue
                max_group = min(_MAX_GROUP_SIZE, len(block) // 2)
                for group_size in range(1, max_group + 1):
                    start = 0
                    while start + 2 * group_size <= len(block):
                        count = _run_length(block, start, group_size, var)
                        if count >= 2 and count * group_size >= _MIN_COVERAGE:
                            yield cls(subprogram=sp.name, start=start,
                                      group_size=group_size, count=count,
                                      var=var, path=path)
                            start += count * group_size
                        else:
                            start += 1

    def describe(self) -> str:
        return (f"reroll {self.count}x{self.group_size} statements in "
                f"{self.subprogram} at {self.start} into a loop over "
                f"{self.var}")

    def affected_subprograms(self, typed):
        return [self.subprogram]

    def apply(self, typed: TypedPackage) -> ast.Package:
        sp = _subprogram(typed, self.subprogram)
        block = get_block(sp.body, self.path)
        end = self.start + self.group_size * self.count
        if self.start < 0 or end > len(block):
            raise TransformationError(
                f"{self.name}: range {self.start}..{end} outside block of "
                f"{len(block)} statements")
        ctx = typed.context(self.subprogram)
        if ctx.var_type(self.var) is not None:
            raise TransformationError(
                f"{self.name}: loop variable '{self.var}' already in scope")
        window = block[self.start:end]
        if self.var in bound_loop_vars(sp.body, self.path) or \
                self.var in names_in(window):
            raise TransformationError(
                f"{self.name}: loop variable '{self.var}' would capture "
                f"an existing use (enclosing loop variable or identifier "
                f"in the rerolled statements)")
        groups = [tuple(block[self.start + g * self.group_size:
                              self.start + (g + 1) * self.group_size])
                  for g in range(self.count)]
        try:
            template = anti_unify_groups(groups, self.var)
        except AntiUnifyError as exc:
            raise TransformationError(f"{self.name}: {exc}")
        loop = ast.For(var=self.var, lo=ast.IntLit(value=0),
                       hi=ast.IntLit(value=self.count - 1), body=template)
        new_block = block[:self.start] + (loop,) + block[end:]
        new_body = replace_block(sp.body, self.path, new_block)
        new_sp = dataclasses.replace(sp, body=new_body)
        return typed.package.replace_subprogram(self.subprogram, new_sp)


def _run_length(block, start: int, group_size: int, var: str) -> int:
    """How many consecutive groups from ``start`` anti-unify together."""
    groups = [tuple(block[start:start + group_size])]
    count = 1
    while True:
        lo = start + count * group_size
        nxt = tuple(block[lo:lo + group_size])
        if len(nxt) < group_size:
            break
        try:
            anti_unify_groups(groups + [nxt], var)
        except AntiUnifyError:
            break
        groups.append(nxt)
        count += 1
    return count


def _subprogram(typed: TypedPackage, name: str) -> ast.Subprogram:
    try:
        return typed.package.subprogram(name)
    except KeyError:
        raise TransformationError(f"no subprogram named '{name}'")
