"""Reversing inlined functions or cloned code (paper 5.1).

Two mechanical forms:

* :class:`ExtractFunction` -- the user supplies a function definition whose
  body is a single return expression; every subexpression in the package
  matching that expression pattern (parameters act as pattern variables) is
  replaced by a call.  This is how inlined ``SubWord``/``RotWord``/GF
  arithmetic is recovered in the AES study.
* :class:`ExtractProcedureClone` -- the user supplies a procedure; every
  maximal statement window matching its body modulo consistent parameter
  substitution is replaced by a call.

Both reject application when no occurrence matches -- so a defect inside
one clone (and not the others) leaves the defective occurrence visibly
un-replaced, or fails the transformation outright when the window was
specified explicitly.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..lang import TypedPackage, ast, parse_package
from ..lang.errors import MiniAdaError
from .engine import Transformation, TransformationError

__all__ = ["ExtractFunction", "ExtractProcedureClone", "parse_subprogram"]


def parse_subprogram(source: str) -> ast.Subprogram:
    """Parse a single subprogram given as bare source text."""
    wrapped = f"package Snippet is\n{source}\nend Snippet;"
    try:
        pkg = parse_package(wrapped)
    except MiniAdaError as exc:
        raise TransformationError(f"cannot parse subprogram snippet: {exc}")
    if len(pkg.subprograms) != 1:
        raise TransformationError("snippet must contain exactly one subprogram")
    return pkg.subprograms[0]


def resolve_snippet(typed: TypedPackage,
                    snippet: ast.Subprogram) -> ast.Subprogram:
    """Type-check a snippet against the current package's declarations so
    its AST is in resolved form (ArrayRef/FuncCall/Conversion), matching
    the resolved trees it will be pattern-matched against."""
    from ..lang import analyze
    if snippet.name in typed.signatures:
        raise TransformationError(f"'{snippet.name}' already exists")
    probe = dataclasses.replace(
        typed.package,
        subprograms=typed.package.subprograms + (snippet,))
    try:
        resolved = analyze(probe)
    except MiniAdaError as exc:
        raise TransformationError(f"snippet does not type-check: {exc}")
    return resolved.package.subprogram(snippet.name)


def _match_expr(pattern: ast.Expr, expr: ast.Expr, params: frozenset,
                binding: Dict[str, ast.Expr]) -> bool:
    if isinstance(pattern, ast.Name) and pattern.id in params:
        existing = binding.get(pattern.id)
        if existing is None:
            binding[pattern.id] = expr
            return True
        return existing == expr
    if type(pattern) is not type(expr):
        return False
    if isinstance(pattern, (ast.IntLit, ast.BoolLit)):
        return pattern.value == expr.value
    if isinstance(pattern, ast.Name):
        return pattern.id == expr.id
    if not dataclasses.is_dataclass(pattern):
        return False
    for field in dataclasses.fields(pattern):
        p_val = getattr(pattern, field.name)
        e_val = getattr(expr, field.name)
        if isinstance(p_val, ast.Node):
            if not isinstance(e_val, ast.Node) or \
                    not _match_expr(p_val, e_val, params, binding):
                return False
        elif isinstance(p_val, tuple):
            if not isinstance(e_val, tuple) or len(p_val) != len(e_val):
                return False
            for p_item, e_item in zip(p_val, e_val):
                if isinstance(p_item, ast.Node):
                    if not _match_expr(p_item, e_item, params, binding):
                        return False
                elif p_item != e_item:
                    return False
        elif p_val != e_val:
            return False
    return True


@dataclass
class ExtractFunction(Transformation):
    """Replace occurrences of an expression pattern with calls to a new
    (user-supplied) function whose body is exactly that pattern."""

    function_source: str
    targets: Optional[Tuple[str, ...]] = None  # subprograms to rewrite
    minimum_occurrences: int = 1

    name = "extract-function"
    category = "reversing inlined functions or cloned code"

    def describe(self) -> str:
        fn = parse_subprogram(self.function_source)
        return f"extract inlined occurrences of {fn.name} into calls"

    def affected_subprograms(self, typed):
        return list(self.targets) if self.targets else []

    def apply(self, typed: TypedPackage) -> ast.Package:
        fn = parse_subprogram(self.function_source)
        if not fn.is_function:
            raise TransformationError(f"{self.name}: snippet must be a function")
        fn = resolve_snippet(typed, fn)
        if len(fn.body) != 1 or not isinstance(fn.body[0], ast.Return):
            raise TransformationError(
                f"{self.name}: function body must be a single return")
        pattern = fn.body[0].value
        params = frozenset(p.name for p in fn.params)
        occurrences = 0

        def rewrite_expr(node):
            nonlocal occurrences
            if isinstance(node, ast.Expr):
                binding: Dict[str, ast.Expr] = {}
                if _match_expr(pattern, node, params, binding) and \
                        set(binding) == set(params):
                    occurrences += 1
                    return ast.FuncCall(
                        name=fn.name,
                        args=tuple(binding[p.name] for p in fn.params))
            return node

        new_subprograms = []
        target_names = set(self.targets) if self.targets else None
        for sp in typed.package.subprograms:
            if target_names is not None and sp.name not in target_names:
                new_subprograms.append(sp)
                continue
            new_sp = ast.transform_bottom_up(sp, rewrite_expr)
            new_subprograms.append(new_sp)
        if occurrences < self.minimum_occurrences:
            raise TransformationError(
                f"{self.name}: pattern for {fn.name} matched {occurrences} "
                f"time(s), expected at least {self.minimum_occurrences}")
        pkg = dataclasses.replace(
            typed.package, subprograms=tuple(new_subprograms) + (fn,))
        return pkg


@dataclass
class ExtractProcedureClone(Transformation):
    """Replace statement windows matching a (user-supplied) procedure body
    with calls to it.  Matching is modulo consistent substitution of the
    procedure's parameters: ``in`` parameters match any expression, ``out``
    and ``in out`` parameters match variable or component names."""

    procedure_source: str
    targets: Optional[Tuple[str, ...]] = None
    minimum_occurrences: int = 1

    name = "extract-procedure-clone"
    category = "reversing inlined functions or cloned code"

    def describe(self) -> str:
        proc = parse_subprogram(self.procedure_source)
        return f"extract cloned blocks into calls to {proc.name}"

    def affected_subprograms(self, typed):
        return list(self.targets) if self.targets else []

    def apply(self, typed: TypedPackage) -> ast.Package:
        proc = parse_subprogram(self.procedure_source)
        if proc.is_function:
            raise TransformationError(
                f"{self.name}: snippet must be a procedure")
        proc = resolve_snippet(typed, proc)
        if proc.decls:
            raise TransformationError(
                f"{self.name}: clone pattern may not declare locals")
        params = frozenset(p.name for p in proc.params)
        out_params = {p.name for p in proc.params if p.mode != "in"}
        pattern = proc.body
        occurrences = 0

        def try_match(window) -> Optional[Dict[str, ast.Expr]]:
            binding: Dict[str, ast.Expr] = {}
            for p_stmt, stmt in zip(pattern, window):
                if not _match_expr(p_stmt, stmt, params, binding):
                    return None
            if set(binding) != set(params):
                return None
            for out in out_params:
                bound = binding[out]
                if not isinstance(bound, (ast.Name, ast.ArrayRef)):
                    return None
            return binding

        def rewrite_block(stmts):
            nonlocal occurrences
            out: List[ast.Stmt] = []
            i = 0
            n = len(pattern)
            stmts = list(stmts)
            while i < len(stmts):
                window = stmts[i:i + n]
                binding = try_match(window) if len(window) == n else None
                if binding is not None:
                    occurrences += 1
                    out.append(ast.ProcCall(
                        name=proc.name,
                        args=tuple(binding[p.name] for p in proc.params)))
                    i += n
                    continue
                stmt = stmts[i]
                out.append(_rewrite_stmt(stmt))
                i += 1
            return tuple(out)

        def _rewrite_stmt(stmt):
            if isinstance(stmt, ast.If):
                branches = tuple((c, rewrite_block(b))
                                 for c, b in stmt.branches)
                return ast.If(branches=branches,
                              else_body=rewrite_block(stmt.else_body))
            if isinstance(stmt, (ast.For, ast.While)):
                return dataclasses.replace(stmt, body=rewrite_block(stmt.body))
            return stmt

        new_subprograms = []
        target_names = set(self.targets) if self.targets else None
        for sp in typed.package.subprograms:
            if target_names is not None and sp.name not in target_names:
                new_subprograms.append(sp)
                continue
            new_subprograms.append(
                dataclasses.replace(sp, body=rewrite_block(sp.body)))
        if occurrences < self.minimum_occurrences:
            raise TransformationError(
                f"{self.name}: clone pattern for {proc.name} matched "
                f"{occurrences} time(s), expected at least "
                f"{self.minimum_occurrences}")
        return dataclasses.replace(
            typed.package, subprograms=tuple(new_subprograms) + (proc,))
