"""Reversing table lookups (the paper's AES-specific category:
"Ten table lookups were replaced with explicit computations based on the
documentation and the precomputed tables removed").

:class:`ReverseTableLookup` takes a replacement function (user-supplied
source, derived from the documentation -- for AES the GF(2^8) arithmetic)
and mechanically:

1. checks, *exhaustively over the table's domain*, that the function
   computes exactly the table's entries (a proof by evaluation -- this is
   the transformation's semantics-preservation theorem);
2. replaces every lookup ``T (E)`` with the call ``F (E)``;
3. removes the table constant once it is unreferenced.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Optional, Tuple

from ..lang import Interpreter, TypedPackage, ast
from ..lang.errors import MiniAdaError
from ..lang.types import ArrayType
from .engine import Transformation, TransformationError
from .inline import parse_subprogram, resolve_snippet

__all__ = ["ReverseTableLookup"]


@dataclass
class ReverseTableLookup(Transformation):
    """Replace lookups of constant ``table`` with calls to a function.

    ``function_source`` supplies a new function definition; alternatively
    ``function_name`` names one that already exists in the package.  The
    function must take one argument (the index)."""

    table: str
    function_source: Optional[str] = None
    function_name: Optional[str] = None

    name = "reverse-table-lookup"
    category = "reversing table lookups"

    #: Companion-function suffix: a function ``T_F`` next to a constant
    #: table ``T`` is, by the package's naming convention, the explicit
    #: computation the table caches -- exactly the reversal target.
    FUNCTION_SUFFIX = "_F"

    @classmethod
    def enumerate_sites(cls, typed: TypedPackage):
        """Propose reversing every constant array table that has a
        one-argument companion function ``<table>_F``, in declaration
        order.  Whether the function really computes the table is
        ``apply``'s exhaustive-evaluation theorem, not enumeration's."""
        for decl in typed.package.decls:
            name = getattr(decl, "name", None)
            if name is None or name not in typed.constants:
                continue
            if not isinstance(typed.constants[name][0], ArrayType):
                continue
            fname = name + cls.FUNCTION_SUFFIX
            sig = typed.signatures.get(fname)
            if sig is not None and sig.is_function and len(sig.params) == 1:
                yield cls(table=name, function_name=fname)

    def describe(self) -> str:
        target = self.function_name or \
            parse_subprogram(self.function_source).name
        return f"replace lookups of table {self.table} with calls to {target}"

    def affected_subprograms(self, typed):
        return []

    def apply(self, typed: TypedPackage) -> ast.Package:
        const = typed.constants.get(self.table)
        if const is None or not isinstance(const[0], ArrayType):
            raise TransformationError(
                f"{self.name}: '{self.table}' is not a constant table")
        table_type, table_values = const

        pkg = typed.package
        if self.function_source is not None:
            fn = parse_subprogram(self.function_source)
            fn = resolve_snippet(typed, fn)
            fname = fn.name
            pkg = dataclasses.replace(pkg, subprograms=pkg.subprograms + (fn,))
            from ..lang import analyze
            typed_probe = analyze(pkg)
        elif self.function_name is not None:
            fname = self.function_name
            fn = typed.signatures.get(fname)
            if fn is None or not fn.is_function:
                raise TransformationError(
                    f"{self.name}: '{fname}' is not a function")
            typed_probe = typed
        else:
            raise TransformationError(
                f"{self.name}: need function_source or function_name")
        fn_sig = typed_probe.signatures[fname]
        if len(fn_sig.params) != 1:
            raise TransformationError(
                f"{self.name}: replacement function must take one argument")

        # Semantics-preservation by exhaustive evaluation over the domain.
        interp = Interpreter(typed_probe, check_asserts=False)
        for offset, expected in enumerate(table_values):
            index = table_type.lo + offset
            try:
                actual = interp.call_function(fname, [index])
            except MiniAdaError as exc:
                raise TransformationError(
                    f"{self.name}: {fname}({index}) faults: {exc}")
            if actual != expected:
                raise TransformationError(
                    f"{self.name}: {fname}({index}) = {actual} but "
                    f"{self.table}({index}) = {expected}; the function does "
                    f"not compute the table")

        replaced = 0

        def rewrite(node):
            nonlocal replaced
            if isinstance(node, ast.ArrayRef) and \
                    isinstance(node.base, ast.Name) and \
                    node.base.id == self.table:
                replaced += 1
                return ast.FuncCall(name=fname, args=(node.index,))
            return node

        subprograms = tuple(ast.transform_bottom_up(sp, rewrite)
                            for sp in pkg.subprograms)
        decls = pkg.decls
        still_used = any(
            isinstance(n, ast.Name) and n.id == self.table
            for sp in subprograms for n in ast.walk(sp)
        ) or any(
            isinstance(n, ast.Name) and n.id == self.table
            for d in decls if not (isinstance(d, ast.ConstDecl)
                                   and d.name == self.table)
            for n in ast.walk(d)
        )
        if not still_used:
            decls = tuple(d for d in decls
                          if not (isinstance(d, ast.ConstDecl)
                                  and d.name == self.table))
        if replaced == 0:
            raise TransformationError(
                f"{self.name}: no lookups of '{self.table}' found")
        return dataclasses.replace(pkg, decls=decls, subprograms=subprograms)
