"""Moving statements into or out of conditionals (paper 5.1)."""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Tuple

from ..lang import TypedPackage, ast
from .dataflow import reads_of_expr, writes_of_stmts
from .engine import Transformation, TransformationError, get_block, \
    replace_block

__all__ = ["MoveIntoConditional", "MoveOutOfConditional"]


@dataclass
class MoveIntoConditional(Transformation):
    """``S; if B then T1 else T2`` becomes ``if B then S; T1 else S; T2``
    when S cannot affect B.  Reveals distinct execution paths so they can be
    split into separate procedures (the paper's AES block 7)."""

    subprogram: str
    index: int  # index of S; the If must directly follow
    path: Tuple = ()

    name = "move-into-conditional"
    category = "moving statements into or out of conditionals"

    def describe(self) -> str:
        return (f"move statement {self.index} of {self.subprogram} "
                f"into the following conditional")

    def affected_subprograms(self, typed):
        return [self.subprogram]

    def apply(self, typed: TypedPackage) -> ast.Package:
        sp = typed.package.subprogram(self.subprogram)
        block = get_block(sp.body, self.path)
        if self.index + 1 >= len(block):
            raise TransformationError(f"{self.name}: no statement after S")
        moved = block[self.index]
        conditional = block[self.index + 1]
        if not isinstance(conditional, ast.If):
            raise TransformationError(
                f"{self.name}: statement after S is not an if")
        written = writes_of_stmts([moved], typed)
        for cond, _ in conditional.branches:
            if written & reads_of_expr(cond):
                raise TransformationError(
                    f"{self.name}: S writes variables the condition reads")
        branches = tuple((cond, (moved,) + body)
                         for cond, body in conditional.branches)
        # An absent else arm still executes S; materialize it.
        else_body = (moved,) + conditional.else_body
        new_if = ast.If(branches=branches, else_body=else_body)
        new_block = block[:self.index] + (new_if,) + block[self.index + 2:]
        new_body = replace_block(sp.body, self.path, new_block)
        return typed.package.replace_subprogram(
            self.subprogram, dataclasses.replace(sp, body=new_body))


@dataclass
class MoveOutOfConditional(Transformation):
    """Hoist a statement that every arm of an if starts with."""

    subprogram: str
    index: int  # index of the If
    path: Tuple = ()

    name = "move-out-of-conditional"
    category = "moving statements into or out of conditionals"

    def describe(self) -> str:
        return (f"hoist the common first statement out of the conditional "
                f"at {self.index} in {self.subprogram}")

    def affected_subprograms(self, typed):
        return [self.subprogram]

    def apply(self, typed: TypedPackage) -> ast.Package:
        sp = typed.package.subprogram(self.subprogram)
        block = get_block(sp.body, self.path)
        conditional = block[self.index]
        if not isinstance(conditional, ast.If):
            raise TransformationError(f"{self.name}: target is not an if")
        arms = [body for _, body in conditional.branches]
        arms.append(conditional.else_body)
        if any(not arm for arm in arms):
            raise TransformationError(f"{self.name}: an arm is empty")
        first = arms[0][0]
        if any(arm[0] != first for arm in arms):
            raise TransformationError(
                f"{self.name}: arms do not share a common first statement")
        written = writes_of_stmts([first], typed)
        for cond, _ in conditional.branches:
            if written & reads_of_expr(cond):
                raise TransformationError(
                    f"{self.name}: hoisted statement writes variables a "
                    f"condition reads")
        branches = tuple((cond, body[1:])
                         for cond, body in conditional.branches)
        new_if = ast.If(branches=branches,
                        else_body=conditional.else_body[1:])
        new_block = (block[:self.index] + (first, new_if)
                     + block[self.index + 1:])
        new_body = replace_block(sp.body, self.path, new_block)
        return typed.package.replace_subprogram(
            self.subprogram, dataclasses.replace(sp, body=new_body))
