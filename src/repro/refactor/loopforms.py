"""Adjusting loop forms (paper 5.1, "Adjusting loop forms")."""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Tuple

from ..lang import TypedPackage, ast
from .engine import Transformation, TransformationError, bound_loop_vars, \
    get_block, iter_blocks, names_in, replace_block

__all__ = ["ShiftLoopBounds", "SplitLoopNest", "MergeLoopNest"]

#: Fresh merged-loop variables proposed by site enumeration, in
#: deterministic preference order.
_FRESH_VARS = ("I", "J", "K", "L")


def _substitute_name(stmts, name: str, replacement: ast.Expr):
    def subst(node):
        if isinstance(node, ast.Name) and node.id == name:
            return replacement
        return node

    return tuple(ast.transform_bottom_up(s, subst) for s in stmts)


def _the_loop(block, index) -> ast.For:
    if index >= len(block) or not isinstance(block[index], ast.For):
        raise TransformationError(f"statement {index} is not a for-loop")
    return block[index]


def _literal(expr: ast.Expr, what: str) -> int:
    if not isinstance(expr, ast.IntLit):
        raise TransformationError(f"{what} must be a literal bound")
    return expr.value


@dataclass
class ShiftLoopBounds(Transformation):
    """Re-base a loop to new bounds with an index remap:
    ``for I in lo .. hi`` becomes ``for I in lo+d .. hi+d`` with every use
    of I rewritten to ``I - d``.  Aligning loop ranges with the
    specification's ranges simplifies invariants."""

    subprogram: str
    index: int
    delta: int
    path: Tuple = ()

    name = "shift-loop-bounds"
    category = "adjusting loop forms"
    match_neutral = True   # body-only: declares no new package element

    def describe(self) -> str:
        return (f"shift bounds of loop {self.index} in {self.subprogram} "
                f"by {self.delta}")

    def affected_subprograms(self, typed):
        return [self.subprogram]

    def apply(self, typed: TypedPackage) -> ast.Package:
        sp = typed.package.subprogram(self.subprogram)
        block = get_block(sp.body, self.path)
        loop = _the_loop(block, self.index)
        lo = _literal(loop.lo, "loop low bound")
        hi = _literal(loop.hi, "loop high bound")
        remap: ast.Expr = ast.BinOp(op="-", left=ast.Name(id=loop.var),
                                    right=ast.IntLit(value=self.delta))
        if self.delta == 0:
            raise TransformationError(f"{self.name}: delta of 0 is a no-op")
        new_body = _substitute_name(loop.body, loop.var, remap)
        new_loop = dataclasses.replace(
            loop, lo=ast.IntLit(value=lo + self.delta),
            hi=ast.IntLit(value=hi + self.delta), body=new_body)
        new_block = block[:self.index] + (new_loop,) + block[self.index + 1:]
        return typed.package.replace_subprogram(
            self.subprogram,
            dataclasses.replace(
                sp, body=replace_block(sp.body, self.path, new_block)))


@dataclass
class SplitLoopNest(Transformation):
    """``for K in 0 .. n*m-1`` becomes ``for I in 0 .. n-1: for J in
    0 .. m-1`` with ``K = I*m + J`` -- recovering the two-dimensional
    structure specifications use for the AES state."""

    subprogram: str
    index: int
    inner: int  # m
    outer_var: str = "I"
    inner_var: str = "J"
    path: Tuple = ()

    name = "split-loop-nest"
    category = "adjusting loop forms"
    match_neutral = True   # body-only: declares no new package element

    def describe(self) -> str:
        return (f"split loop {self.index} of {self.subprogram} into a "
                f"{self.outer_var}/{self.inner_var} nest (inner {self.inner})")

    def affected_subprograms(self, typed):
        return [self.subprogram]

    def apply(self, typed: TypedPackage) -> ast.Package:
        sp = typed.package.subprogram(self.subprogram)
        block = get_block(sp.body, self.path)
        loop = _the_loop(block, self.index)
        lo = _literal(loop.lo, "loop low bound")
        hi = _literal(loop.hi, "loop high bound")
        if lo != 0:
            raise TransformationError(f"{self.name}: loop must start at 0")
        total = hi + 1
        if total % self.inner != 0:
            raise TransformationError(
                f"{self.name}: {total} iterations do not factor by "
                f"{self.inner}")
        ctx = typed.context(self.subprogram)
        if self.outer_var == self.inner_var:
            raise TransformationError(
                f"{self.name}: outer and inner variables must differ")
        # Freshness must cover more than the declared context: enclosing
        # loop variables and names used in the loop body (other than the
        # split variable, which is substituted away) would be captured.
        taken = bound_loop_vars(sp.body, self.path) | \
            (names_in(loop.body) - {loop.var})
        for var in (self.outer_var, self.inner_var):
            if ctx.var_type(var) is not None or var == loop.var:
                raise TransformationError(
                    f"{self.name}: variable '{var}' already in scope")
            if var in taken:
                raise TransformationError(
                    f"{self.name}: variable '{var}' would capture an "
                    f"existing use")
        outer_count = total // self.inner
        remap = ast.BinOp(
            op="+",
            left=ast.BinOp(op="*", left=ast.Name(id=self.outer_var),
                           right=ast.IntLit(value=self.inner)),
            right=ast.Name(id=self.inner_var))
        new_body = _substitute_name(loop.body, loop.var, remap)
        nest = ast.For(
            var=self.outer_var, lo=ast.IntLit(value=0),
            hi=ast.IntLit(value=outer_count - 1),
            body=(ast.For(var=self.inner_var, lo=ast.IntLit(value=0),
                          hi=ast.IntLit(value=self.inner - 1),
                          body=new_body),))
        new_block = block[:self.index] + (nest,) + block[self.index + 1:]
        return typed.package.replace_subprogram(
            self.subprogram,
            dataclasses.replace(
                sp, body=replace_block(sp.body, self.path, new_block)))


@dataclass
class MergeLoopNest(Transformation):
    """Inverse of :class:`SplitLoopNest`: flatten a perfect 2-level nest."""

    subprogram: str
    index: int
    var: str = "K"
    path: Tuple = ()

    name = "merge-loop-nest"
    category = "adjusting loop forms"
    match_neutral = True   # body-only: declares no new package element

    @classmethod
    def enumerate_sites(cls, typed: TypedPackage):
        """Propose every perfect 0-based 2-level nest with literal
        bounds, in package/block/statement order."""
        for sp in typed.package.subprograms:
            ctx = typed.context(sp.name)
            for path, block in iter_blocks(sp.body):
                # Per-block freshness: avoid enclosing loop variables and
                # every identifier used inside the block (see RerollLoop's
                # enumerator for the capture scenario this prevents).
                taken = bound_loop_vars(sp.body, path) | names_in(block)
                var = next((v for v in _FRESH_VARS
                            if ctx.var_type(v) is None and v not in taken),
                           None)
                if var is None:
                    continue
                for index, stmt in enumerate(block):
                    if not isinstance(stmt, ast.For) or len(stmt.body) != 1:
                        continue
                    inner = stmt.body[0]
                    if not isinstance(inner, ast.For):
                        continue
                    bounds = (stmt.lo, stmt.hi, inner.lo, inner.hi)
                    if not all(isinstance(b, ast.IntLit) for b in bounds):
                        continue
                    if stmt.lo.value != 0 or inner.lo.value != 0:
                        continue
                    yield cls(subprogram=sp.name, index=index, var=var,
                              path=path)

    def describe(self) -> str:
        return f"merge the loop nest at {self.index} in {self.subprogram}"

    def affected_subprograms(self, typed):
        return [self.subprogram]

    def apply(self, typed: TypedPackage) -> ast.Package:
        sp = typed.package.subprogram(self.subprogram)
        block = get_block(sp.body, self.path)
        outer = _the_loop(block, self.index)
        if len(outer.body) != 1 or not isinstance(outer.body[0], ast.For):
            raise TransformationError(
                f"{self.name}: loop nest is not perfect")
        inner = outer.body[0]
        olo = _literal(outer.lo, "outer low")
        ohi = _literal(outer.hi, "outer high")
        ilo = _literal(inner.lo, "inner low")
        ihi = _literal(inner.hi, "inner high")
        if olo != 0 or ilo != 0:
            raise TransformationError(f"{self.name}: loops must start at 0")
        ctx = typed.context(self.subprogram)
        if ctx.var_type(self.var) is not None:
            raise TransformationError(
                f"{self.name}: variable '{self.var}' already in scope")
        taken = bound_loop_vars(sp.body, self.path) | \
            (names_in(inner.body) - {outer.var, inner.var})
        if self.var in taken:
            raise TransformationError(
                f"{self.name}: variable '{self.var}' would capture an "
                f"existing use")
        m = ihi + 1
        outer_remap = ast.BinOp(op="/", left=ast.Name(id=self.var),
                                right=ast.IntLit(value=m))
        inner_remap = ast.BinOp(op="mod", left=ast.Name(id=self.var),
                                right=ast.IntLit(value=m))
        body = _substitute_name(inner.body, outer.var, outer_remap)
        body = _substitute_name(body, inner.var, inner_remap)
        merged = ast.For(var=self.var, lo=ast.IntLit(value=0),
                         hi=ast.IntLit(value=(ohi + 1) * m - 1), body=body)
        new_block = block[:self.index] + (merged,) + block[self.index + 1:]
        return typed.package.replace_subprogram(
            self.subprogram,
            dataclasses.replace(
                sp, body=replace_block(sp.body, self.path, new_block)))
