"""Modifying redundant or intermediate computations and storage
(paper 5.1) -- plus renaming, the paper's "merely tidying the code".
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Optional, Tuple

from ..lang import TypedPackage, ast
from ..lang.parser import parse_expression
from ..lang.errors import MiniAdaError
from .dataflow import reads_of_expr, reads_writes
from .engine import Transformation, TransformationError, get_block, \
    replace_block

__all__ = ["RemoveIntermediateVariable", "IntroduceIntermediateVariable",
           "RemoveDeadSubprogram", "Rename"]


@dataclass
class RemoveIntermediateVariable(Transformation):
    """Inline a local scalar assigned exactly once (at the top level) whose
    value expression stays stable until every use, then drop the
    declaration.  Shortens verification conditions by removing redundant
    intermediate names."""

    subprogram: str
    variable: str

    name = "remove-intermediate-variable"
    category = "modifying redundant or intermediate storage"
    match_neutral = True   # body/local-only: no package element changes

    @classmethod
    def enumerate_sites(cls, typed: TypedPackage):
        """Propose every local assigned exactly once at the top level of
        its body -- a cheap over-approximation; ``apply`` still checks
        nested writes and value stability."""
        for sp in typed.package.subprograms:
            for decl in sp.decls:
                assigned = [s for s in sp.body
                            if isinstance(s, ast.Assign)
                            and isinstance(s.target, ast.Name)
                            and s.target.id == decl.name]
                if len(assigned) == 1:
                    yield cls(subprogram=sp.name, variable=decl.name)

    def describe(self) -> str:
        return f"inline and remove intermediate '{self.variable}' in " \
               f"{self.subprogram}"

    def affected_subprograms(self, typed):
        return [self.subprogram]

    def apply(self, typed: TypedPackage) -> ast.Package:
        sp = typed.package.subprogram(self.subprogram)
        if self.variable not in {d.name for d in sp.decls}:
            raise TransformationError(
                f"{self.name}: '{self.variable}' is not a local variable")
        assignments = [
            (i, s) for i, s in enumerate(sp.body)
            if isinstance(s, ast.Assign)
            and isinstance(s.target, ast.Name)
            and s.target.id == self.variable]
        nested_writes = any(
            self.variable in reads_writes([s], typed)[1]
            for i, s in enumerate(sp.body)
            if not (assignments and i == assignments[0][0]))
        if len(assignments) != 1 or nested_writes:
            raise TransformationError(
                f"{self.name}: '{self.variable}' must be assigned exactly "
                f"once at the top level")
        idx, assignment = assignments[0]
        value = assignment.value
        value_reads = reads_of_expr(value)
        # The inlined expression must stay stable: nothing it reads may be
        # written after the assignment.
        for s in sp.body[idx + 1:]:
            if reads_writes([s], typed)[1] & value_reads:
                raise TransformationError(
                    f"{self.name}: value of '{self.variable}' is not stable "
                    f"over its uses")

        def substitute(node):
            if isinstance(node, ast.Name) and node.id == self.variable:
                return value
            return node

        new_tail = tuple(ast.transform_bottom_up(s, substitute)
                         for s in sp.body[idx + 1:])
        new_body = sp.body[:idx] + new_tail
        new_decls = tuple(d for d in sp.decls if d.name != self.variable)
        return typed.package.replace_subprogram(
            self.subprogram,
            dataclasses.replace(sp, body=new_body, decls=new_decls))


@dataclass
class IntroduceIntermediateVariable(Transformation):
    """Name a subexpression: insert ``VAR := EXPR`` before statement
    ``at_index`` and replace occurrences of EXPR in the following
    ``span`` statements.  Stores "extra but useful information" and makes
    annotations expressible."""

    subprogram: str
    variable: str
    type_name: str
    expression: str  # MiniAda source text
    at_index: int
    span: int = 1
    path: Tuple = ()

    name = "introduce-intermediate-variable"
    category = "modifying redundant or intermediate storage"

    def describe(self) -> str:
        return f"introduce intermediate '{self.variable}' in {self.subprogram}"

    def affected_subprograms(self, typed):
        return [self.subprogram]

    def apply(self, typed: TypedPackage) -> ast.Package:
        sp = typed.package.subprogram(self.subprogram)
        ctx = typed.context(self.subprogram)
        if ctx.var_type(self.variable) is not None:
            raise TransformationError(
                f"{self.name}: '{self.variable}' already in scope")
        try:
            raw = parse_expression(self.expression)
        except MiniAdaError as exc:
            raise TransformationError(f"{self.name}: bad expression: {exc}")
        from ..lang.typecheck import _resolve_expr
        expr = _resolve_expr(raw, typed, ctx)
        block = get_block(sp.body, self.path)
        if not (0 <= self.at_index <= len(block)):
            raise TransformationError(f"{self.name}: bad insertion point")

        replaced = 0

        def substitute(node):
            nonlocal replaced
            if node == expr:
                replaced += 1
                return ast.Name(id=self.variable)
            return node

        hi = min(len(block), self.at_index + self.span)
        rewritten = tuple(ast.transform_bottom_up(s, substitute)
                          for s in block[self.at_index:hi])
        if replaced == 0:
            raise TransformationError(
                f"{self.name}: expression does not occur in the target span")
        assignment = ast.Assign(target=ast.Name(id=self.variable), value=expr)
        new_block = (block[:self.at_index] + (assignment,) + rewritten
                     + block[hi:])
        new_decls = sp.decls + (
            ast.VarDecl(name=self.variable, type_name=self.type_name),)
        return typed.package.replace_subprogram(
            self.subprogram,
            dataclasses.replace(
                sp, decls=new_decls,
                body=replace_block(sp.body, self.path, new_block)))


def _referents(pkg: ast.Package, name: str) -> Tuple[str, ...]:
    """Package locations that still call ``name``: other subprograms (via
    FuncCall/ProcCall anywhere in their decls, body, pre or post) and
    package-level declarations whose initializer mentions it."""
    out = []
    for sp in pkg.subprograms:
        if sp.name == name:
            continue
        if any(isinstance(node, (ast.FuncCall, ast.ProcCall))
               and node.name == name for node in ast.walk(sp)):
            out.append(sp.name)
    for decl in pkg.decls:
        if any(isinstance(node, ast.FuncCall) and node.name == name
               for node in ast.walk(decl)):
            out.append(getattr(decl, "name", None) or type(decl).__name__)
    return tuple(out)


@dataclass
class RemoveDeadSubprogram(Transformation):
    """Delete a subprogram nothing in the package references any more.

    Superseded originals accumulate while a working copy (the ``_B``
    suffix convention) is grown next to them; once the last caller moves
    over, the original is dead storage that keeps its base name occupied
    and its verification conditions in the workload.  Removing it is the
    enabling tidy-up for the suffix-dropping renames."""

    subprogram: str

    name = "remove-dead-subprogram"
    category = "modifying redundant or intermediate storage"

    @classmethod
    def enumerate_sites(cls, typed: TypedPackage):
        """Propose every subprogram with no referents, in package order.
        Over-approximates on purpose: externally visible (observable)
        subprograms have no in-package callers either, and this class
        cannot know the caller's observable interface -- the engine
        rejects those applications instead (see
        ``RefactoringEngine.apply``)."""
        for sp in typed.package.subprograms:
            if not _referents(typed.package, sp.name):
                yield cls(subprogram=sp.name)

    def describe(self) -> str:
        return f"remove dead subprogram '{self.subprogram}'"

    def affected_subprograms(self, typed):
        return []

    def apply(self, typed: TypedPackage) -> ast.Package:
        pkg = typed.package
        if not any(sp.name == self.subprogram for sp in pkg.subprograms):
            raise TransformationError(
                f"{self.name}: no subprogram named '{self.subprogram}'")
        referents = _referents(pkg, self.subprogram)
        if referents:
            raise TransformationError(
                f"{self.name}: '{self.subprogram}' is still referenced by "
                f"{', '.join(sorted(referents))}")
        return dataclasses.replace(
            pkg, subprograms=tuple(sp for sp in pkg.subprograms
                                   if sp.name != self.subprogram))


@dataclass
class Rename(Transformation):
    """Rename a subprogram, type, or constant across the package -- the
    tidying that aligns implementation names with specification names
    (raising the structure match ratio without changing semantics)."""

    kind: str  # 'subprogram', 'type', 'constant'
    old: str
    new: str

    name = "rename"
    category = "modifying redundant or intermediate storage"

    #: Working-copy suffix the AES refactoring uses while a byte-typed
    #: replacement coexists with the word-typed original (``Encrypt_B``
    #: next to ``Encrypt``); once the original is gone, dropping the
    #: suffix is the mechanical tidy-up site enumeration proposes.
    WORKING_SUFFIX = "_B"

    @classmethod
    def enumerate_sites(cls, typed: TypedPackage):
        """Propose dropping the working-copy suffix wherever the base
        name has become free, in declaration order per kind."""
        taken = set(typed.signatures) | set(typed.types) \
            | set(typed.constants)
        groups = (
            ("subprogram", [sp.name for sp in typed.package.subprograms]),
            ("type", [d.name for d in typed.package.decls
                      if getattr(d, "name", None) in typed.types]),
            ("constant", [d.name for d in typed.package.decls
                          if getattr(d, "name", None) in typed.constants]),
        )
        for kind, names in groups:
            for old in names:
                if not old.endswith(cls.WORKING_SUFFIX):
                    continue
                new = old[:-len(cls.WORKING_SUFFIX)]
                if new and new not in taken:
                    yield cls(kind=kind, old=old, new=new)

    def describe(self) -> str:
        return f"rename {self.kind} {self.old} -> {self.new}"

    def affected_subprograms(self, typed):
        return []

    def apply(self, typed: TypedPackage) -> ast.Package:
        pkg = typed.package
        if self.kind == "subprogram":
            exists = self.old in typed.signatures
        elif self.kind == "type":
            exists = self.old in typed.types
        elif self.kind == "constant":
            exists = self.old in typed.constants
        else:
            raise TransformationError(f"{self.name}: bad kind {self.kind!r}")
        if not exists:
            raise TransformationError(
                f"{self.name}: no {self.kind} named '{self.old}'")
        taken = (set(typed.signatures) | set(typed.types)
                 | set(typed.constants))
        if self.new in taken:
            raise TransformationError(
                f"{self.name}: '{self.new}' is already in use")

        def rename_node(node):
            if self.kind == "subprogram":
                if isinstance(node, ast.FuncCall) and node.name == self.old:
                    return dataclasses.replace(node, name=self.new)
                if isinstance(node, ast.ProcCall) and node.name == self.old:
                    return dataclasses.replace(node, name=self.new)
                if isinstance(node, ast.Subprogram) and node.name == self.old:
                    return dataclasses.replace(node, name=self.new)
            elif self.kind == "type":
                if isinstance(node, ast.Conversion) and \
                        node.type_name == self.old:
                    return dataclasses.replace(node, type_name=self.new)
                if isinstance(node, (ast.VarDecl, ast.Param)) and \
                        node.type_name == self.old:
                    return dataclasses.replace(node, type_name=self.new)
                if isinstance(node, ast.ConstDecl) and \
                        node.type_name == self.old:
                    return dataclasses.replace(node, type_name=self.new)
                if isinstance(node, ast.ArrayTypeDecl):
                    updates = {}
                    if node.name == self.old:
                        updates["name"] = self.new
                    if node.elem_type == self.old:
                        updates["elem_type"] = self.new
                    if updates:
                        return dataclasses.replace(node, **updates)
                if isinstance(node, (ast.ModTypeDecl, ast.RangeTypeDecl)) \
                        and node.name == self.old:
                    return dataclasses.replace(node, name=self.new)
                if isinstance(node, ast.SubtypeDecl):
                    updates = {}
                    if node.name == self.old:
                        updates["name"] = self.new
                    if node.base == self.old:
                        updates["base"] = self.new
                    if updates:
                        return dataclasses.replace(node, **updates)
                if isinstance(node, ast.Subprogram) and \
                        node.return_type == self.old:
                    return dataclasses.replace(node, return_type=self.new)
                if isinstance(node, ast.ProofFunctionDecl) and \
                        node.return_type == self.old:
                    return dataclasses.replace(node, return_type=self.new)
            elif self.kind == "constant":
                if isinstance(node, ast.Name) and node.id == self.old:
                    return dataclasses.replace(node, id=self.new)
                if isinstance(node, ast.ConstDecl) and node.name == self.old:
                    return dataclasses.replace(node, name=self.new)
            return node

        return ast.transform_bottom_up(pkg, rename_node)
