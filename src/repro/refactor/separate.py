"""Separating loops (paper 5.1, "Separating loops")."""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Set, Tuple

from ..lang import TypedPackage, ast
from .dataflow import reads_writes
from .engine import Transformation, TransformationError, get_block, \
    replace_block

__all__ = ["SeparateLoop"]


def _array_accesses_only_at(stmts, array: str, loop_var: str) -> bool:
    """Every reference to ``array`` indexes it with exactly the loop
    variable (so iteration i touches only element i)."""
    for stmt in stmts:
        for node in ast.walk(stmt):
            if isinstance(node, ast.ArrayRef) and \
                    isinstance(node.base, ast.Name) and node.base.id == array:
                if node.index != ast.Name(id=loop_var):
                    return False
            elif isinstance(node, ast.Name) and node.id == array:
                pass  # bare reference checked via the ArrayRef above
    return True


@dataclass
class SeparateLoop(Transformation):
    """``for i loop S1; S2 end`` becomes two loops when no value flows from
    a later S2 iteration back into S1, and every S1->S2 flow is through
    same-index array elements or loop-invariant scalars:

    * S2 writes nothing S1 reads or writes;
    * any variable S1 writes and S2 reads is an array accessed only at the
      loop index on both sides."""

    subprogram: str
    index: int          # index of the loop in the block
    split_at: int       # first statement of S2 within the loop body
    path: Tuple = ()

    name = "separate-loop"
    category = "separating loops"

    def describe(self) -> str:
        return (f"separate loop {self.index} of {self.subprogram} at body "
                f"statement {self.split_at}")

    def affected_subprograms(self, typed):
        return [self.subprogram]

    def apply(self, typed: TypedPackage) -> ast.Package:
        sp = typed.package.subprogram(self.subprogram)
        block = get_block(sp.body, self.path)
        if self.index >= len(block) or \
                not isinstance(block[self.index], ast.For):
            raise TransformationError(f"{self.name}: target is not a for-loop")
        loop = block[self.index]
        if not (0 < self.split_at < len(loop.body)):
            raise TransformationError(f"{self.name}: bad split point")
        first = loop.body[:self.split_at]
        second = loop.body[self.split_at:]
        r1, w1 = reads_writes(first, typed)
        r2, w2 = reads_writes(second, typed)
        if w2 & (r1 | w1):
            raise TransformationError(
                f"{self.name}: second part writes variables the first part "
                f"uses ({sorted(w2 & (r1 | w1))})")
        flows: Set[str] = w1 & r2
        flows.discard(loop.var)
        for var in sorted(flows):
            if not (_array_accesses_only_at(first, var, loop.var)
                    and _array_accesses_only_at(second, var, loop.var)):
                raise TransformationError(
                    f"{self.name}: cross-part flow through '{var}' is not "
                    f"restricted to the loop index")
        loop1 = dataclasses.replace(loop, body=first)
        loop2 = dataclasses.replace(loop, body=second)
        new_block = (block[:self.index] + (loop1, loop2)
                     + block[self.index + 1:])
        return typed.package.replace_subprogram(
            self.subprogram,
            dataclasses.replace(
                sp, body=replace_block(sp.body, self.path, new_block)))
