"""Splitting procedures (paper 5.1, "Splitting procedures")."""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import List, Tuple

from ..lang import TypedPackage, ast
from .dataflow import reads_writes, reads_of_stmts
from .engine import Transformation, TransformationError

__all__ = ["SplitProcedure"]


@dataclass
class SplitProcedure(Transformation):
    """Extract the top-level statement range ``start .. end-1`` of a
    subprogram into a new procedure, computing its parameter list from
    dataflow (reads become ``in``, writes live afterwards become ``out`` or
    ``in out``, dead locals move into the new procedure)."""

    subprogram: str
    start: int
    end: int
    new_name: str

    name = "split-procedure"
    category = "splitting procedures"

    def describe(self) -> str:
        return (f"extract statements {self.start}..{self.end - 1} of "
                f"{self.subprogram} into procedure {self.new_name}")

    def affected_subprograms(self, typed):
        return [self.subprogram]

    def apply(self, typed: TypedPackage) -> ast.Package:
        sp = typed.package.subprogram(self.subprogram)
        if self.new_name in typed.signatures:
            raise TransformationError(
                f"{self.name}: '{self.new_name}' already exists")
        if not (0 <= self.start < self.end <= len(sp.body)):
            raise TransformationError(f"{self.name}: bad statement range")
        region = sp.body[self.start:self.end]
        before = sp.body[:self.start]
        after = sp.body[self.end:]
        for node in region:
            for inner in ast.walk(node):
                if isinstance(inner, ast.Return):
                    raise TransformationError(
                        f"{self.name}: region contains a return")

        ctx = typed.context(self.subprogram)
        reads, writes = reads_writes(region, typed)
        # Keep only enclosing-scope variables (not constants, not loop vars
        # introduced inside the region itself).
        scope = {p.name for p in sp.params} | {d.name for d in sp.decls}
        reads &= scope
        writes &= scope
        out_params = {p.name for p in sp.params if p.mode != "in"}
        live = reads_of_stmts(after, typed) | out_params
        if sp.is_function:
            live |= set()  # returns in `after` already counted as reads

        written_before = set()
        for s in before:
            written_before |= reads_writes([s], typed)[1]
        initialized = written_before | {p.name for p in sp.params
                                        if p.mode != "out"} \
            | {d.name for d in sp.decls if d.init is not None}

        params: List[ast.Param] = []
        moved_locals: List[ast.VarDecl] = []
        decl_types = {d.name: d.type_name for d in sp.decls}
        param_types = {p.name: p.type_name for p in sp.params}

        def type_name_of(var: str) -> str:
            if var in decl_types:
                return decl_types[var]
            return param_types[var]

        for var in sorted(reads | writes):
            is_read = var in reads
            is_written = var in writes
            needed_after = var in live
            defined_before = var in initialized
            if is_written and (is_read and defined_before):
                mode = "in out"
            elif is_written and needed_after:
                mode = "out"
            elif is_written and not needed_after:
                # Dead after the region; if it is a local used only inside
                # the region, move the declaration.
                used_elsewhere = (
                    var in reads_of_stmts(before, typed)
                    or var in reads_of_stmts(after, typed)
                    or var in reads_writes(before, typed)[1]
                    or var in reads_writes(after, typed)[1]
                    or var in param_types)
                if not used_elsewhere and var in decl_types:
                    moved_locals.append(
                        ast.VarDecl(name=var, type_name=decl_types[var]))
                    continue
                mode = "out"
            else:
                mode = "in"
            params.append(ast.Param(name=var, mode=mode,
                                    type_name=type_name_of(var)))

        new_proc = ast.Subprogram(
            name=self.new_name,
            params=tuple(params),
            return_type=None,
            decls=tuple(moved_locals),
            body=tuple(region),
        )
        call = ast.ProcCall(
            name=self.new_name,
            args=tuple(ast.Name(id=p.name) for p in params))
        remaining_decls = tuple(
            d for d in sp.decls
            if d.name not in {m.name for m in moved_locals})
        new_sp = dataclasses.replace(
            sp, decls=remaining_decls, body=before + (call,) + after)
        pkg = typed.package.replace_subprogram(self.subprogram, new_sp)
        return dataclasses.replace(
            pkg, subprograms=pkg.subprograms + (new_proc,))
