"""The transformation library (the paper's figure-1 "Transformation
Library").

The registry maps category names (paper section 5.1 plus the two
AES-specific categories of 6.2.1) to transformation classes; the process
loop and the harness use it to report per-category application counts the
way the paper does ("50 refactoring transformations in eight categories").
"""

from __future__ import annotations

from typing import Dict, List, Type

from .conditionals import MoveIntoConditional, MoveOutOfConditional
from .datastruct import AdjustDataStructures, UserSpecifiedTransformation
from .engine import Transformation
from .inline import ExtractFunction, ExtractProcedureClone
from .loopforms import MergeLoopNest, ShiftLoopBounds, SplitLoopNest
from .reroll import RerollLoop
from .separate import SeparateLoop
from .split import SplitProcedure
from .storage import (
    IntroduceIntermediateVariable, RemoveDeadSubprogram,
    RemoveIntermediateVariable, Rename,
)
from .tables import ReverseTableLookup

__all__ = ["TRANSFORMATION_LIBRARY", "category_of", "library_categories"]

#: category -> transformation classes, mirroring paper section 5.1 / 6.2.1.
TRANSFORMATION_LIBRARY: Dict[str, List[Type[Transformation]]] = {
    "rerolling loops": [RerollLoop],
    "moving statements into or out of conditionals": [
        MoveIntoConditional, MoveOutOfConditional],
    "splitting procedures": [SplitProcedure],
    "adjusting loop forms": [ShiftLoopBounds, SplitLoopNest, MergeLoopNest],
    "reversing inlined functions or cloned code": [
        ExtractFunction, ExtractProcedureClone],
    "separating loops": [SeparateLoop],
    "modifying redundant or intermediate storage": [
        RemoveIntermediateVariable, IntroduceIntermediateVariable,
        RemoveDeadSubprogram, Rename],
    "adjusting data structures": [AdjustDataStructures],
    "reversing table lookups": [ReverseTableLookup],
    "user-specified": [UserSpecifiedTransformation],
}


def library_categories() -> List[str]:
    return list(TRANSFORMATION_LIBRARY)


def category_of(transformation: Transformation) -> str:
    return transformation.category
