"""Anti-unification for loop re-rolling.

Re-rolling (paper section 5.1, "rerolling loops") turns a sequence of
repeated statement groups into a for-loop.  The mechanical core is
*anti-unification*: given N structurally parallel statement groups, find a
template whose only holes are integer literals that vary *affinely* with
the group index (``value = base + step * i``), and rebuild the holes as
expressions over the new loop variable.

If any difference between groups is not an affine integer progression, the
groups cannot be re-rolled (which is exactly how a seeded defect in one
unrolled iteration makes the transformation inapplicable -- the detection
channel table 2/3 call "verification refactoring").
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from ..lang import ast

__all__ = ["AntiUnifyError", "anti_unify_groups"]


class AntiUnifyError(Exception):
    """The groups do not anti-unify to an affine template."""


@dataclass(frozen=True)
class _Hole:
    """Placeholder expression carrying the per-group literal values."""

    values: Tuple[int, ...]


def _anti_unify(nodes: Sequence[ast.Node]) -> ast.Node:
    first = nodes[0]
    if any(type(n) is not type(first) for n in nodes):
        raise AntiUnifyError(
            f"node kinds differ: {sorted({type(n).__name__ for n in nodes})}")
    if isinstance(first, ast.IntLit):
        values = tuple(n.value for n in nodes)
        if len(set(values)) == 1:
            return first
        return _HoleExpr(values=values)
    if not dataclasses.is_dataclass(first):
        raise AntiUnifyError(f"cannot anti-unify {type(first).__name__}")
    updates = {}
    for field in dataclasses.fields(first):
        vals = [getattr(n, field.name) for n in nodes]
        updates[field.name] = _anti_unify_value(vals, field.name)
    return dataclasses.replace(first, **updates)


def _anti_unify_value(values, field_name):
    first = values[0]
    if isinstance(first, ast.Node):
        return _anti_unify(values)
    if isinstance(first, tuple):
        lengths = {len(v) for v in values}
        if len(lengths) != 1:
            raise AntiUnifyError(f"shape differs at field {field_name}")
        return tuple(_anti_unify_value([v[i] for v in values], field_name)
                     for i in range(len(first)))
    if any(v != first for v in values):
        raise AntiUnifyError(
            f"non-expression field {field_name!r} differs across groups")
    return first


@dataclass(frozen=True)
class _HoleExpr(ast.Expr):
    values: Tuple[int, ...]


def _affine(values: Tuple[int, ...]) -> Optional[Tuple[int, int]]:
    """Return (base, step) if values form base + step*i, else None."""
    base = values[0]
    step = values[1] - values[0]
    for i, v in enumerate(values):
        if v != base + step * i:
            return None
    return base, step


def _fill_holes(node: ast.Node, var_name: str) -> ast.Node:
    def fill(n):
        if isinstance(n, _HoleExpr):
            affine = _affine(n.values)
            if affine is None:
                raise AntiUnifyError(
                    f"literal sequence {n.values} is not affine")
            base, step = affine
            expr: ast.Expr = ast.Name(id=var_name)
            if step != 1:
                expr = ast.BinOp(op="*", left=ast.IntLit(value=step),
                                 right=expr)
            if base != 0:
                expr = ast.BinOp(op="+", left=expr,
                                 right=ast.IntLit(value=base))
            if step == 0:
                expr = ast.IntLit(value=base)
            return expr
        return n

    return ast.transform_bottom_up(node, fill)


def anti_unify_groups(groups: List[Tuple[ast.Stmt, ...]],
                      var_name: str) -> Tuple[ast.Stmt, ...]:
    """Anti-unify ``groups`` into a template over ``var_name`` (group index
    runs 0 .. len(groups)-1).  Raises :class:`AntiUnifyError` if impossible."""
    if len(groups) < 2:
        raise AntiUnifyError("need at least two groups to re-roll")
    size = len(groups[0])
    if any(len(g) != size for g in groups):
        raise AntiUnifyError("groups have different sizes")
    template = []
    for k in range(size):
        merged = _anti_unify([g[k] for g in groups])
        template.append(_fill_holes(merged, var_name))
    return tuple(template)
