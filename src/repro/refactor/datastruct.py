"""Adjusting data structures (the paper's AES-specific category: "32-bit
words were replaced by arrays of four bytes, and sets of four words were
packed into states as defined by the specification") -- plus the general
user-specified transformation escape hatch of section 5.2.

Representation changes are whole-program rewrites whose recognition
"requires human insight" (section 5.2), so they are expressed here the way
the paper allows: the user *specifies* the transformed subprograms and
declarations, an equivalence theorem is generated automatically, and the
proof checker (our :mod:`repro.equiv`) discharges it.  The engine applies
the change mechanically and refuses it if the theorem fails.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Dict, Optional, Sequence, Tuple

from ..lang import TypedPackage, ast, parse_package
from ..lang.errors import MiniAdaError
from .engine import Transformation, TransformationError

__all__ = ["UserSpecifiedTransformation", "AdjustDataStructures"]


def _parse_decls(source: str) -> Tuple[ast.Decl, ...]:
    wrapped = f"package Snippet is\n{source}\nend Snippet;"
    try:
        pkg = parse_package(wrapped)
    except MiniAdaError as exc:
        raise TransformationError(f"cannot parse declarations: {exc}")
    if pkg.subprograms:
        raise TransformationError("declaration snippet contains subprograms")
    return pkg.decls


def _parse_subprograms(source: str) -> Tuple[ast.Subprogram, ...]:
    wrapped = f"package Snippet is\n{source}\nend Snippet;"
    try:
        pkg = parse_package(wrapped)
    except MiniAdaError as exc:
        raise TransformationError(f"cannot parse subprograms: {exc}")
    return pkg.subprograms


@dataclass
class UserSpecifiedTransformation(Transformation):
    """A transformation given by its effect: declarations to add/remove and
    subprograms to add/replace/remove.  The semantics-preservation theorem
    over the engine's observable interface is generated and checked by the
    engine on application, exactly like a library transformation."""

    description: str
    add_decls: str = ""                 # MiniAda declaration source
    remove_decls: Tuple[str, ...] = ()
    replace_subprograms: str = ""       # MiniAda subprogram source
    remove_subprograms: Tuple[str, ...] = ()
    category: str = "user-specified"
    #: Skip (rather than reject on) remove-list names that are already
    #: gone.  A hand-scripted pipeline wants the strict default -- a name
    #: missing from a known program state is a script bug.  A *planned*
    #: chain does not: the search may legitimately have tidied a dead
    #: original away (remove-dead-subprogram, suffix renames) before a
    #: catalog stage whose remove list still names it, and insisting on
    #: the name makes the stage unapplicable forever.  Soundness is
    #: unaffected either way -- the type check and the preservation
    #: theorem still gate every application.
    tolerate_missing: bool = False

    name = "user-specified"

    def describe(self) -> str:
        return self.description

    def affected_subprograms(self, typed):
        return []

    def apply(self, typed: TypedPackage) -> ast.Package:
        pkg = typed.package
        decls = list(pkg.decls)
        if self.remove_decls:
            named = set(self.remove_decls)
            found = {getattr(d, "name", None) for d in decls} & named
            if found != named and not self.tolerate_missing:
                raise TransformationError(
                    f"{self.name}: declarations not found: "
                    f"{sorted(named - found)}")
            decls = [d for d in decls
                     if getattr(d, "name", None) not in named]
        if self.add_decls:
            decls.extend(_parse_decls(self.add_decls))

        subprograms = list(pkg.subprograms)
        if self.remove_subprograms:
            named = set(self.remove_subprograms)
            present = {sp.name for sp in subprograms}
            if not named <= present and not self.tolerate_missing:
                raise TransformationError(
                    f"{self.name}: subprograms not found: "
                    f"{sorted(named - present)}")
            subprograms = [sp for sp in subprograms if sp.name not in named]
        if self.replace_subprograms:
            replacements = _parse_subprograms(self.replace_subprograms)
            by_name = {sp.name: sp for sp in replacements}
            out = []
            for sp in subprograms:
                out.append(by_name.pop(sp.name, sp))
            out.extend(by_name.values())
            subprograms = out
        return dataclasses.replace(pkg, decls=tuple(decls),
                                   subprograms=tuple(subprograms))


@dataclass
class AdjustDataStructures(UserSpecifiedTransformation):
    """Alias fixing the paper's category label for representation changes
    (word -> four-byte array, four words -> state)."""

    category: str = "adjusting data structures"

    name = "adjust-data-structures"
