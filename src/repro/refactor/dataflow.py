"""Def/use dataflow analysis for refactoring applicability checks.

Splitting a procedure needs the live-in/live-out sets of a statement range
to compute parameters; moving statements into conditionals needs
write/read independence; separating loops needs cross-iteration
independence.  All of those reduce to the conservative read/write sets
computed here.
"""

from __future__ import annotations

from typing import Iterable, Sequence, Set, Tuple

from ..lang import TypedPackage, ast

__all__ = ["reads_of_expr", "reads_of_stmts", "writes_of_stmts",
           "may_interfere", "live_after"]


def reads_of_expr(expr: ast.Expr) -> Set[str]:
    """Variable names an expression may read (constants excluded by the
    caller if desired -- constants are immutable so they never interfere)."""
    out: Set[str] = set()
    for node in ast.walk(expr):
        if isinstance(node, ast.Name):
            out.add(node.id)
        elif isinstance(node, ast.OldExpr):
            out.add(node.name)
    return out


def _target_reads(target: ast.Expr) -> Set[str]:
    """Reads performed while storing to a target: every index expression,
    and the root itself for a component store (partial update)."""
    out: Set[str] = set()
    node = target
    while isinstance(node, ast.ArrayRef):
        out |= reads_of_expr(node.index)
        node = node.base
    return out


def _root(target: ast.Expr) -> str:
    node = target
    while isinstance(node, ast.ArrayRef):
        node = node.base
    assert isinstance(node, ast.Name)
    return node.id


def reads_writes(stmts: Sequence[ast.Stmt],
                 typed: TypedPackage = None) -> Tuple[Set[str], Set[str]]:
    reads: Set[str] = set()
    writes: Set[str] = set()
    for stmt in stmts:
        _collect(stmt, reads, writes, typed)
    return reads, writes


def _collect(stmt: ast.Stmt, reads: Set[str], writes: Set[str],
             typed: TypedPackage):
    if isinstance(stmt, ast.Assign):
        reads |= reads_of_expr(stmt.value)
        reads |= _target_reads(stmt.target)
        root = _root(stmt.target)
        writes.add(root)
        if isinstance(stmt.target, ast.ArrayRef):
            reads.add(root)  # partial update reads the old array
    elif isinstance(stmt, ast.If):
        for cond, body in stmt.branches:
            reads |= reads_of_expr(cond)
            for s in body:
                _collect(s, reads, writes, typed)
        for s in stmt.else_body:
            _collect(s, reads, writes, typed)
    elif isinstance(stmt, ast.For):
        reads |= reads_of_expr(stmt.lo) | reads_of_expr(stmt.hi)
        writes.add(stmt.var)
        for s in stmt.body:
            _collect(s, reads, writes, typed)
    elif isinstance(stmt, ast.While):
        reads |= reads_of_expr(stmt.cond)
        for s in stmt.body:
            _collect(s, reads, writes, typed)
    elif isinstance(stmt, ast.ProcCall):
        if typed is not None:
            callee = typed.signatures[stmt.name]
            for arg, param in zip(stmt.args, callee.params):
                if param.mode != "out":
                    reads |= reads_of_expr(arg)
                else:
                    reads |= _target_reads(arg)
                if param.mode != "in":
                    writes.add(_root(arg))
                    if isinstance(arg, ast.ArrayRef):
                        reads.add(_root(arg))
        else:
            for arg in stmt.args:
                reads |= reads_of_expr(arg)
    elif isinstance(stmt, ast.Return):
        if stmt.value is not None:
            reads |= reads_of_expr(stmt.value)
    elif isinstance(stmt, ast.Assert):
        reads |= reads_of_expr(stmt.expr)


def reads_of_stmts(stmts: Sequence[ast.Stmt],
                   typed: TypedPackage = None) -> Set[str]:
    return reads_writes(stmts, typed)[0]


def writes_of_stmts(stmts: Sequence[ast.Stmt],
                    typed: TypedPackage = None) -> Set[str]:
    return reads_writes(stmts, typed)[1]


def may_interfere(first: Sequence[ast.Stmt], second: Sequence[ast.Stmt],
                  typed: TypedPackage = None) -> bool:
    """Conservative: may reordering ``first`` relative to ``second`` change
    behaviour?  True unless their footprints are provably disjoint."""
    r1, w1 = reads_writes(first, typed)
    r2, w2 = reads_writes(second, typed)
    return bool((w1 & (r2 | w2)) or (w2 & r1))


def live_after(stmts_after: Sequence[ast.Stmt], out_params: Iterable[str],
               typed: TypedPackage = None) -> Set[str]:
    """Conservative liveness: everything read later, plus out parameters
    (they are observable at subprogram exit)."""
    return reads_of_stmts(stmts_after, typed) | set(out_params)
