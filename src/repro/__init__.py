"""Echo verification refactoring — a full reproduction of Yin, Knight &
Weimer, "Exploiting Refactoring in Formal Verification", DSN 2009.

The package implements the paper's entire stack from scratch in Python:

* :mod:`repro.lang` — MiniAda, a SPARK-Ada-subset substrate (lexer, parser,
  type checker, interpreter, ``--#`` annotations);
* :mod:`repro.logic` — hash-consed terms, rewriting, interval reasoning;
* :mod:`repro.vcgen` — weakest-precondition VC generation with
  exception-freedom checks, a resource budget, and a simplifier
  (SPARK Examiner/Simplifier substitute);
* :mod:`repro.prover` — automatic prover (ground evaluation, congruence
  closure, interval + difference-bound arithmetic, axiom instantiation)
  plus interactive tactic scripts;
* :mod:`repro.refactor` — the transformation engine and the paper's
  transformation library (re-rolling, reverse table lookups, clone
  extraction, splitting, loop forms, ...);
* :mod:`repro.equiv` — per-application semantics-preservation theorems;
* :mod:`repro.spec` — MiniPVS, a functional specification language with
  TCC-generating type checker (PVS substitute);
* :mod:`repro.extract` / :mod:`repro.implication` — reverse synthesis and
  the lemma-based implication proof;
* :mod:`repro.metrics` — the section-5.2 metrics analyzer;
* :mod:`repro.aes` — the complete AES case study (FIPS-197 theory,
  optimized T-table implementation, 14 transformation blocks, annotations);
* :mod:`repro.defects` — the section-7 seeded-defect experiment;
* :mod:`repro.harness` — regenerates every table and figure of the paper;
* :mod:`repro.exec` — the obligation execution layer: scheduling over
  serial/thread/process backends, content-addressed result caching, and
  structured telemetry, configured through :class:`~repro.exec.ExecConfig`;
* :mod:`repro.serve` — verification-as-a-service: an asyncio daemon
  (``python -m repro.serve``) with a durable obligation queue, two
  admission-controlled priority lanes, multi-tenant warm caches, and
  live per-VC event streaming over a line-delimited JSON protocol.

Quickstart::

    from repro import ExecConfig, verify_aes
    result = verify_aes()       # the full AES case study (a few minutes)
    print(result.summary())

    # multi-core proving with a shared incremental cache
    from repro import ResultCache
    cache = ResultCache()
    result = verify_aes(exec=ExecConfig(jobs=4, backend="process",
                                        cache=cache))
"""

from .core import (
    EchoResult, EchoVerifier, MetricsGate, RefactoringProcess, verify_aes,
)
from .exec import (
    TERMINAL_EVENTS, EventSubscription, ExecConfig, ObligationEvent,
    ResultCache, RetryPolicy, Telemetry, default_telemetry,
)
from .incr import IncrementalStats, ManifestStore

__version__ = "1.0.0"

__all__ = ["EchoVerifier", "EchoResult", "MetricsGate",
           "RefactoringProcess", "verify_aes",
           "ExecConfig", "ResultCache", "RetryPolicy", "Telemetry",
           # the event-subscription API (DESIGN.md §14 taxonomy table):
           # subscribe via Telemetry.subscribe, observe ObligationEvent,
           # use TERMINAL_EVENTS for end-of-life accounting.
           "ObligationEvent", "EventSubscription", "TERMINAL_EVENTS",
           "default_telemetry",
           # incremental re-verification (DESIGN.md §15)
           "ManifestStore", "IncrementalStats",
           "__version__"]
