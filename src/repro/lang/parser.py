"""Recursive-descent parser for MiniAda.

The grammar is a compact subset of SPARK Ada: one package per compilation
unit containing type/constant declarations, proof annotations, and
subprogram bodies.  Expressions follow Ada precedence, including Ada's rule
that ``and``/``or``/``xor`` may not be mixed at one precedence level without
parentheses (a genuine readability aid the SPARK tools also enforce).
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from . import ast
from .errors import ParseError
from .lexer import tokenize
from .tokens import Token

__all__ = ["parse_package", "parse_expression"]

_REL_OPS = {"=", "/=", "<", "<=", ">", ">="}
_ADD_OPS = {"+", "-"}
_MUL_OPS = {"*", "/", "mod"}
_LOGICAL = {"and", "or", "xor"}


class _Parser:
    def __init__(self, tokens: List[Token]):
        self.tokens = tokens
        self.pos = 0

    # -- token plumbing ------------------------------------------------

    def peek(self, ahead: int = 0) -> Token:
        return self.tokens[min(self.pos + ahead, len(self.tokens) - 1)]

    def advance(self) -> Token:
        tok = self.tokens[self.pos]
        if tok.kind != "eof":
            self.pos += 1
        return tok

    def check(self, kind: str, value=None) -> bool:
        return self.peek().matches(kind, value)

    def accept(self, kind: str, value=None) -> Optional[Token]:
        if self.check(kind, value):
            return self.advance()
        return None

    def expect(self, kind: str, value=None) -> Token:
        tok = self.peek()
        if not tok.matches(kind, value):
            want = value if value is not None else kind
            raise ParseError(f"expected {want!r}, found {tok.value!r}", tok.line)
        return self.advance()

    def expect_id(self) -> str:
        return self.expect("id").value

    # -- package structure ----------------------------------------------

    def parse_package(self) -> ast.Package:
        self.expect("kw", "package")
        name = self.expect_id()
        self.expect("kw", "is")
        decls: List[ast.Decl] = []
        subprograms: List[ast.Subprogram] = []
        while not self.check("kw", "end"):
            tok = self.peek()
            if tok.matches("kw", "type"):
                decls.append(self.parse_type_decl())
            elif tok.matches("kw", "subtype"):
                decls.append(self.parse_subtype_decl())
            elif tok.matches("annot", "function"):
                decls.append(self.parse_proof_function())
            elif tok.matches("annot", "rule"):
                decls.append(self.parse_proof_rule())
            elif tok.matches("kw", "function") or tok.matches("kw", "procedure"):
                subprograms.append(self.parse_subprogram())
            elif tok.kind == "id":
                decls.append(self.parse_constant_decl())
            else:
                raise ParseError(f"unexpected token {tok.value!r} in package", tok.line)
        self.expect("kw", "end")
        end_name = self.expect_id()
        if end_name != name:
            raise ParseError(
                f"package ends with '{end_name}', expected '{name}'", self.peek().line
            )
        self.expect("sym", ";")
        self.expect("eof")
        return ast.Package(name=name, decls=tuple(decls), subprograms=tuple(subprograms))

    def parse_type_decl(self) -> ast.Decl:
        self.expect("kw", "type")
        name = self.expect_id()
        self.expect("kw", "is")
        if self.accept("kw", "mod"):
            modulus = self.expect("int").value
            self.expect("sym", ";")
            return ast.ModTypeDecl(name=name, modulus=modulus)
        if self.accept("kw", "range"):
            lo = self.parse_static_int()
            self.expect("sym", "..")
            hi = self.parse_static_int()
            self.expect("sym", ";")
            return ast.RangeTypeDecl(name=name, lo=lo, hi=hi)
        if self.accept("kw", "array"):
            self.expect("sym", "(")
            lo = self.parse_static_int()
            self.expect("sym", "..")
            hi = self.parse_static_int()
            self.expect("sym", ")")
            self.expect("kw", "of")
            elem = self.expect_id()
            self.expect("sym", ";")
            return ast.ArrayTypeDecl(name=name, lo=lo, hi=hi, elem_type=elem)
        tok = self.peek()
        raise ParseError(f"unsupported type definition at {tok.value!r}", tok.line)

    def parse_subtype_decl(self) -> ast.SubtypeDecl:
        self.expect("kw", "subtype")
        name = self.expect_id()
        self.expect("kw", "is")
        base = self.expect_id()
        self.expect("kw", "range")
        lo = self.parse_static_int()
        self.expect("sym", "..")
        hi = self.parse_static_int()
        self.expect("sym", ";")
        return ast.SubtypeDecl(name=name, base=base, lo=lo, hi=hi)

    def parse_static_int(self) -> int:
        negative = bool(self.accept("sym", "-"))
        value = self.expect("int").value
        return -value if negative else value

    def parse_constant_decl(self) -> ast.ConstDecl:
        name = self.expect_id()
        self.expect("sym", ":")
        self.expect("kw", "constant")
        type_name = self.expect_id()
        self.expect("sym", ":=")
        value = self.parse_expr(allow_aggregate=True)
        self.expect("sym", ";")
        return ast.ConstDecl(name=name, type_name=type_name, value=value)

    def parse_proof_function(self) -> ast.ProofFunctionDecl:
        self.expect("annot", "function")
        name = self.expect_id()
        params = self.parse_params() if self.check("sym", "(") else ()
        self.expect("kw", "return")
        rtype = self.expect_id()
        self.expect("sym", ";")
        return ast.ProofFunctionDecl(name=name, params=params, return_type=rtype)

    def parse_proof_rule(self) -> ast.ProofRuleDecl:
        self.expect("annot", "rule")
        name = self.expect_id()
        params = self.parse_params() if self.check("sym", "(") else ()
        self.expect("sym", ":")
        expr = self.parse_expr()
        self.expect("sym", ";")
        return ast.ProofRuleDecl(name=name, expr=expr, params=params)

    # -- subprograms ------------------------------------------------------

    def parse_params(self) -> Tuple[ast.Param, ...]:
        self.expect("sym", "(")
        params: List[ast.Param] = []
        while True:
            names = [self.expect_id()]
            while self.accept("sym", ","):
                names.append(self.expect_id())
            self.expect("sym", ":")
            mode = "in"
            if self.accept("kw", "in"):
                mode = "in out" if self.accept("kw", "out") else "in"
            elif self.accept("kw", "out"):
                mode = "out"
            type_name = self.expect_id()
            for n in names:
                params.append(ast.Param(name=n, mode=mode, type_name=type_name))
            if not self.accept("sym", ";"):
                break
        self.expect("sym", ")")
        return tuple(params)

    def parse_subprogram(self) -> ast.Subprogram:
        if self.accept("kw", "function"):
            name = self.expect_id()
            params = self.parse_params() if self.check("sym", "(") else ()
            self.expect("kw", "return")
            return_type = self.expect_id()
        else:
            self.expect("kw", "procedure")
            name = self.expect_id()
            params = self.parse_params() if self.check("sym", "(") else ()
            return_type = None
        pre: List[ast.Expr] = []
        post: List[ast.Expr] = []
        while self.peek().kind == "annot":
            kind = self.peek().value
            if kind == "pre":
                self.advance()
                pre.append(self.parse_expr())
                self.expect("sym", ";")
            elif kind == "post":
                self.advance()
                post.append(self.parse_expr())
                self.expect("sym", ";")
            else:
                raise ParseError(
                    f"annotation '--# {kind}' not allowed before 'is'", self.peek().line
                )
        self.expect("kw", "is")
        decls: List[ast.VarDecl] = []
        while self.peek().kind == "id":
            decls.append(self.parse_var_decl())
        self.expect("kw", "begin")
        body = self.parse_statements(("end",))
        self.expect("kw", "end")
        end_name = self.expect_id()
        if end_name != name:
            raise ParseError(
                f"subprogram '{name}' ends with '{end_name}'", self.peek().line
            )
        self.expect("sym", ";")
        return ast.Subprogram(
            name=name, params=params, return_type=return_type,
            decls=tuple(decls), body=body, pre=tuple(pre), post=tuple(post),
        )

    def parse_var_decl(self) -> ast.VarDecl:
        name = self.expect_id()
        self.expect("sym", ":")
        type_name = self.expect_id()
        init = None
        if self.accept("sym", ":="):
            init = self.parse_expr(allow_aggregate=True)
        self.expect("sym", ";")
        return ast.VarDecl(name=name, type_name=type_name, init=init)

    # -- statements -------------------------------------------------------

    def parse_statements(self, stop_keywords) -> Tuple[ast.Stmt, ...]:
        stmts: List[ast.Stmt] = []
        while True:
            tok = self.peek()
            if tok.kind == "kw" and tok.value in stop_keywords:
                return tuple(stmts)
            if tok.kind == "eof":
                raise ParseError("unexpected end of input in statement list", tok.line)
            stmts.append(self.parse_statement())

    def parse_statement(self) -> ast.Stmt:
        tok = self.peek()
        if tok.matches("annot", "assert"):
            self.advance()
            expr = self.parse_expr()
            self.expect("sym", ";")
            return ast.Assert(expr=expr)
        if tok.matches("kw", "null"):
            self.advance()
            self.expect("sym", ";")
            return ast.Null()
        if tok.matches("kw", "return"):
            self.advance()
            value = None
            if not self.check("sym", ";"):
                value = self.parse_expr()
            self.expect("sym", ";")
            return ast.Return(value=value)
        if tok.matches("kw", "if"):
            return self.parse_if()
        if tok.matches("kw", "for"):
            return self.parse_for()
        if tok.matches("kw", "while"):
            return self.parse_while()
        if tok.kind == "id":
            target = self.parse_name_expr()
            if self.accept("sym", ":="):
                value = self.parse_expr(allow_aggregate=True)
                self.expect("sym", ";")
                return ast.Assign(target=target, value=value)
            self.expect("sym", ";")
            # A bare name expression statement is a procedure call.
            if isinstance(target, ast.Name):
                return ast.ProcCall(name=target.id, args=())
            if isinstance(target, ast.App) and isinstance(target.prefix, ast.Name):
                return ast.ProcCall(name=target.prefix.id, args=target.args)
            raise ParseError("malformed procedure call", tok.line)
        raise ParseError(f"unexpected token {tok.value!r} in statement", tok.line)

    def parse_if(self) -> ast.If:
        self.expect("kw", "if")
        branches = []
        cond = self.parse_expr()
        self.expect("kw", "then")
        body = self.parse_statements(("elsif", "else", "end"))
        branches.append((cond, body))
        while self.accept("kw", "elsif"):
            cond = self.parse_expr()
            self.expect("kw", "then")
            body = self.parse_statements(("elsif", "else", "end"))
            branches.append((cond, body))
        else_body: Tuple[ast.Stmt, ...] = ()
        if self.accept("kw", "else"):
            else_body = self.parse_statements(("end",))
        self.expect("kw", "end")
        self.expect("kw", "if")
        self.expect("sym", ";")
        return ast.If(branches=tuple(branches), else_body=else_body)

    def parse_for(self) -> ast.For:
        self.expect("kw", "for")
        var = self.expect_id()
        self.expect("kw", "in")
        reverse = bool(self.accept("kw", "reverse"))
        lo = self.parse_simple_expr()
        self.expect("sym", "..")
        hi = self.parse_simple_expr()
        self.expect("kw", "loop")
        body = self.parse_statements(("end",))
        self.expect("kw", "end")
        self.expect("kw", "loop")
        self.expect("sym", ";")
        return ast.For(var=var, lo=lo, hi=hi, body=body, reverse=reverse)

    def parse_while(self) -> ast.While:
        self.expect("kw", "while")
        cond = self.parse_expr()
        self.expect("kw", "loop")
        body = self.parse_statements(("end",))
        self.expect("kw", "end")
        self.expect("kw", "loop")
        self.expect("sym", ";")
        return ast.While(cond=cond, body=body)

    # -- expressions --------------------------------------------------------

    def parse_expr(self, allow_aggregate: bool = False) -> ast.Expr:
        if allow_aggregate and self.check("sym", "("):
            # `(a, b, ...)` is an aggregate; `(expr) op ...` is an ordinary
            # parenthesized expression.  Try the aggregate reading first and
            # backtrack if it turns out to be a plain expression.
            saved = self.pos
            parsed = self.parse_parenthesized(allow_aggregate=True)
            if isinstance(parsed, ast.Aggregate):
                return parsed
            self.pos = saved
        return self.parse_logical()

    def parse_logical(self) -> ast.Expr:
        left = self.parse_relation()
        first_op = None
        while self.peek().kind == "kw" and self.peek().value in _LOGICAL:
            op = self.advance().value
            if op == "and" and self.accept("kw", "then"):
                op = "and_then"
            elif op == "or" and self.accept("kw", "else"):
                op = "or_else"
            if first_op is None:
                first_op = op
            elif op != first_op:
                raise ParseError(
                    f"mixing '{first_op}' and '{op}' requires parentheses",
                    self.peek().line,
                )
            right = self.parse_relation()
            left = ast.BinOp(op=op, left=left, right=right)
        return left

    def parse_relation(self) -> ast.Expr:
        left = self.parse_simple_expr()
        tok = self.peek()
        if tok.kind == "sym" and tok.value in _REL_OPS:
            op = self.advance().value
            right = self.parse_simple_expr()
            return ast.BinOp(op=op, left=left, right=right)
        return left

    def parse_simple_expr(self) -> ast.Expr:
        if self.check("sym", "-"):
            self.advance()
            operand = self.parse_term()
            left: ast.Expr = ast.UnOp(op="-", operand=operand)
        else:
            left = self.parse_term()
        while self.peek().kind == "sym" and self.peek().value in _ADD_OPS:
            op = self.advance().value
            right = self.parse_term()
            left = ast.BinOp(op=op, left=left, right=right)
        return left

    def parse_term(self) -> ast.Expr:
        left = self.parse_factor()
        while True:
            tok = self.peek()
            if tok.kind == "sym" and tok.value in ("*", "/"):
                op = self.advance().value
            elif tok.matches("kw", "mod"):
                self.advance()
                op = "mod"
            else:
                return left
            right = self.parse_factor()
            left = ast.BinOp(op=op, left=left, right=right)

    def parse_factor(self) -> ast.Expr:
        if self.accept("kw", "not"):
            return ast.UnOp(op="not", operand=self.parse_factor())
        return self.parse_primary()

    def parse_primary(self) -> ast.Expr:
        tok = self.peek()
        if tok.kind == "int":
            self.advance()
            return ast.IntLit(value=tok.value)
        if tok.matches("kw", "true"):
            self.advance()
            return ast.BoolLit(value=True)
        if tok.matches("kw", "false"):
            self.advance()
            return ast.BoolLit(value=False)
        if tok.matches("kw", "for"):
            return self.parse_forall()
        if tok.kind == "id":
            return self.parse_name_expr()
        if tok.matches("sym", "("):
            return self.parse_parenthesized(allow_aggregate=False)
        raise ParseError(f"unexpected token {tok.value!r} in expression", tok.line)

    def parse_forall(self) -> ast.ForAll:
        self.expect("kw", "for")
        self.expect("kw", "all")
        var = self.expect_id()
        self.expect("kw", "in")
        lo = self.parse_simple_expr()
        self.expect("sym", "..")
        hi = self.parse_simple_expr()
        self.expect("sym", "=>")
        body = self.parse_expr()
        return ast.ForAll(var=var, lo=lo, hi=hi, body=body)

    def parse_parenthesized(self, allow_aggregate: bool) -> ast.Expr:
        self.expect("sym", "(")
        if self.accept("kw", "others"):
            self.expect("sym", "=>")
            others = self.parse_expr()
            self.expect("sym", ")")
            return ast.Aggregate(items=(), others=others)
        first = self.parse_expr()
        if self.check("sym", ","):
            items = [first]
            others = None
            while self.accept("sym", ","):
                if self.accept("kw", "others"):
                    self.expect("sym", "=>")
                    others = self.parse_expr()
                    break
                items.append(self.parse_expr())
            self.expect("sym", ")")
            return ast.Aggregate(items=tuple(items), others=others)
        self.expect("sym", ")")
        return first

    def parse_name_expr(self) -> ast.Expr:
        name = self.expect_id()
        expr: ast.Expr = ast.Name(id=name)
        while True:
            if self.check("sym", "("):
                self.expect("sym", "(")
                args = [self.parse_expr()]
                while self.accept("sym", ","):
                    args.append(self.parse_expr())
                self.expect("sym", ")")
                expr = ast.App(prefix=expr, args=tuple(args))
            elif self.check("sym", "~"):
                self.advance()
                if not isinstance(expr, ast.Name):
                    raise ParseError("'~' applies to a plain name", self.peek().line)
                expr = ast.OldExpr(name=expr.id)
            else:
                return expr


def parse_package(source: str) -> ast.Package:
    """Parse a full MiniAda package from source text."""
    return _Parser(tokenize(source)).parse_package()


def parse_expression(source: str) -> ast.Expr:
    """Parse a standalone expression (used by tests and the annotator)."""
    parser = _Parser(tokenize(source))
    expr = parser.parse_expr()
    parser.expect("eof")
    return expr
