"""Abstract syntax tree for MiniAda.

All nodes are frozen dataclasses, so:

* structural equality (``==``) is exactly what clone detection and
  anti-unification in the refactoring engine need;
* nodes are shareable and hashable; rewriting builds new trees with
  ``dataclasses.replace`` and the generic helpers at the bottom of this
  module.

Deliberately *not* stored on nodes: source line numbers (they would break
structural equality).  Line-based metrics are computed from pretty-printed
canonical source (:mod:`repro.lang.printer`), which is also how the paper's
line counts work -- they measure the refactored text, not the parse tree.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Optional, Tuple

__all__ = [
    "Node", "Expr", "Stmt", "Decl",
    "IntLit", "BoolLit", "Name", "App", "ArrayRef", "FuncCall", "Conversion", "BinOp",
    "UnOp", "Aggregate", "OldExpr", "ForAll",
    "Assign", "If", "For", "While", "ProcCall", "Return", "Null", "Assert",
    "Param", "VarDecl", "ConstDecl", "ModTypeDecl", "RangeTypeDecl",
    "ArrayTypeDecl", "SubtypeDecl", "ProofFunctionDecl", "ProofRuleDecl",
    "Subprogram", "Package",
    "children", "transform_bottom_up", "walk", "count_nodes",
]


class Node:
    """Marker base class for all AST nodes."""

    __slots__ = ()


class Expr(Node):
    __slots__ = ()


class Stmt(Node):
    __slots__ = ()


class Decl(Node):
    __slots__ = ()


# ---------------------------------------------------------------------------
# Expressions
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class IntLit(Expr):
    value: int


@dataclass(frozen=True)
class BoolLit(Expr):
    value: bool


@dataclass(frozen=True)
class Name(Expr):
    id: str


@dataclass(frozen=True)
class App(Expr):
    """Unresolved application ``Prefix (Args)`` -- array indexing and
    function calls are syntactically identical in Ada.  The resolver
    (:mod:`repro.lang.typecheck`) rewrites every ``App`` into
    :class:`ArrayRef` or :class:`FuncCall`."""

    prefix: Expr
    args: Tuple[Expr, ...]


@dataclass(frozen=True)
class ArrayRef(Expr):
    """Resolved array indexing; multi-level indexing nests ArrayRefs."""

    base: Expr
    index: Expr


@dataclass(frozen=True)
class FuncCall(Expr):
    name: str
    args: Tuple[Expr, ...]


@dataclass(frozen=True)
class Conversion(Expr):
    """Ada-style type conversion ``TypeName (Operand)``.  Converting into a
    narrower type carries a run-time range check (a VC in the proofs)."""

    type_name: str
    operand: Expr


@dataclass(frozen=True)
class BinOp(Expr):
    """``op`` is one of ``+ - * / mod = /= < <= > >= and or xor and_then
    or_else``.  ``and``/``or``/``xor`` are boolean on Boolean operands and
    bitwise on modular operands, as in Ada."""

    op: str
    left: Expr
    right: Expr


@dataclass(frozen=True)
class UnOp(Expr):
    op: str  # 'not' or '-'
    operand: Expr


@dataclass(frozen=True)
class Aggregate(Expr):
    """Positional array aggregate ``(e1, e2, ...)`` with an optional
    ``others => e`` default component."""

    items: Tuple[Expr, ...]
    others: Optional[Expr] = None


@dataclass(frozen=True)
class OldExpr(Expr):
    """``X~`` in an annotation: the value of X on subprogram entry."""

    name: str


@dataclass(frozen=True)
class ForAll(Expr):
    """``for all I in L .. H => (Body)`` -- annotation expressions only."""

    var: str
    lo: Expr
    hi: Expr
    body: Expr


# ---------------------------------------------------------------------------
# Statements
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class Assign(Stmt):
    target: Expr  # Name or (nested) ArrayRef/App
    value: Expr


@dataclass(frozen=True)
class If(Stmt):
    """``branches`` holds (condition, body) for the if and each elsif."""

    branches: Tuple[Tuple[Expr, Tuple[Stmt, ...]], ...]
    else_body: Tuple[Stmt, ...] = ()


@dataclass(frozen=True)
class For(Stmt):
    var: str
    lo: Expr
    hi: Expr
    body: Tuple[Stmt, ...]
    reverse: bool = False


@dataclass(frozen=True)
class While(Stmt):
    cond: Expr
    body: Tuple[Stmt, ...]


@dataclass(frozen=True)
class ProcCall(Stmt):
    name: str
    args: Tuple[Expr, ...]


@dataclass(frozen=True)
class Return(Stmt):
    value: Optional[Expr] = None


@dataclass(frozen=True)
class Null(Stmt):
    pass


@dataclass(frozen=True)
class Assert(Stmt):
    """``--# assert E;`` -- a proof cut point; inside a loop body it acts as
    the loop invariant."""

    expr: Expr


# ---------------------------------------------------------------------------
# Declarations
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class Param(Node):
    name: str
    mode: str  # 'in', 'out', 'in out'
    type_name: str


@dataclass(frozen=True)
class VarDecl(Decl):
    name: str
    type_name: str
    init: Optional[Expr] = None


@dataclass(frozen=True)
class ConstDecl(Decl):
    name: str
    type_name: str
    value: Expr


@dataclass(frozen=True)
class ModTypeDecl(Decl):
    name: str
    modulus: int


@dataclass(frozen=True)
class RangeTypeDecl(Decl):
    name: str
    lo: int
    hi: int


@dataclass(frozen=True)
class SubtypeDecl(Decl):
    name: str
    base: str
    lo: int
    hi: int


@dataclass(frozen=True)
class ArrayTypeDecl(Decl):
    name: str
    lo: int
    hi: int
    elem_type: str


@dataclass(frozen=True)
class ProofFunctionDecl(Decl):
    """``--# function Name (P : T; ...) return T;`` -- a function usable in
    annotations, defined by proof rules rather than code."""

    name: str
    params: Tuple[Param, ...]
    return_type: str


@dataclass(frozen=True)
class ProofRuleDecl(Decl):
    """``--# rule Name (P : T; ...): Expr;`` -- a fact handed to the
    prover.  The parameters are universally quantified (SPARK FDL rule
    variables made explicit)."""

    name: str
    expr: Expr
    params: Tuple[Param, ...] = ()


@dataclass(frozen=True)
class Subprogram(Decl):
    name: str
    params: Tuple[Param, ...]
    return_type: Optional[str]  # None for procedures
    decls: Tuple[VarDecl, ...]
    body: Tuple[Stmt, ...]
    pre: Tuple[Expr, ...] = ()
    post: Tuple[Expr, ...] = ()

    @property
    def is_function(self) -> bool:
        return self.return_type is not None


@dataclass(frozen=True)
class Package(Node):
    name: str
    decls: Tuple[Decl, ...]  # types, constants, proof functions/rules
    subprograms: Tuple[Subprogram, ...]

    def subprogram(self, name: str) -> Subprogram:
        for sp in self.subprograms:
            if sp.name == name:
                return sp
        raise KeyError(name)

    def decl(self, name: str) -> Decl:
        for d in self.decls:
            if getattr(d, "name", None) == name:
                return d
        raise KeyError(name)

    def replace_subprogram(self, name: str, new: "Subprogram") -> "Package":
        subs = tuple(new if sp.name == name else sp for sp in self.subprograms)
        return dataclasses.replace(self, subprograms=subs)


# ---------------------------------------------------------------------------
# Generic traversal
# ---------------------------------------------------------------------------

def children(node: Node):
    """Yield the direct child nodes of ``node`` (depth 1), in field order."""
    for field in dataclasses.fields(node):
        value = getattr(node, field.name)
        if isinstance(value, Node):
            yield value
        elif isinstance(value, tuple):
            for item in value:
                if isinstance(item, Node):
                    yield item
                elif isinstance(item, tuple):  # If.branches entries
                    for sub in item:
                        if isinstance(sub, Node):
                            yield sub
                        elif isinstance(sub, tuple):
                            for s in sub:
                                if isinstance(s, Node):
                                    yield s


def walk(node: Node):
    """Yield ``node`` and every descendant, preorder."""
    stack = [node]
    while stack:
        current = stack.pop()
        yield current
        stack.extend(reversed(list(children(current))))


def count_nodes(node: Node) -> int:
    return sum(1 for _ in walk(node))


def _rebuild_value(value, fn):
    if isinstance(value, Node):
        return transform_bottom_up(value, fn)
    if isinstance(value, tuple):
        return tuple(_rebuild_value(item, fn) for item in value)
    return value


def transform_bottom_up(node: Node, fn):
    """Rebuild ``node`` bottom-up, applying ``fn`` to every node after its
    children have been transformed.  ``fn`` returns a replacement node (or
    the node unchanged)."""
    updates = {}
    for field in dataclasses.fields(node):
        value = getattr(node, field.name)
        new_value = _rebuild_value(value, fn)
        if new_value != value:
            updates[field.name] = new_value
    if updates:
        node = dataclasses.replace(node, **updates)
    result = fn(node)
    return node if result is None else result
