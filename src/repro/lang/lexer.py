"""Lexer for MiniAda.

Ordinary comments (``-- ...``) are skipped; SPARK-style annotation comments
(``--# pre ...``, ``--# post ...``, ``--# assert ...``, ``--# function ...``,
``--# rule ...``) are real syntax: the lexer emits an ``annot`` token for the
introducer and then lexes the rest of the annotation line normally, so the
parser can reuse the expression grammar inside annotations.
"""

from __future__ import annotations

from typing import List

from .errors import LexError
from .tokens import ANNOTATION_KEYWORDS, KEYWORDS, SYMBOLS, Token

__all__ = ["tokenize"]

_IDENT_START = frozenset("abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ_")
_IDENT_CONT = _IDENT_START | frozenset("0123456789")
_DIGITS = frozenset("0123456789")


def tokenize(source: str) -> List[Token]:
    """Tokenize MiniAda source text (raises :class:`LexError` on bad input)."""
    tokens: List[Token] = []
    line = 1
    i = 0
    n = len(source)
    while i < n:
        ch = source[i]
        if ch == "\n":
            line += 1
            i += 1
            continue
        if ch in " \t\r":
            i += 1
            continue
        if source.startswith("--#", i):
            i += 3
            # Read the annotation keyword.
            while i < n and source[i] in " \t":
                i += 1
            start = i
            while i < n and source[i] in _IDENT_CONT:
                i += 1
            word = source[start:i].lower()
            if word not in ANNOTATION_KEYWORDS:
                raise LexError(f"unknown annotation keyword '{word}'", line)
            tokens.append(Token("annot", word, line))
            continue
        if source.startswith("--", i):
            while i < n and source[i] != "\n":
                i += 1
            continue
        if ch in _IDENT_START:
            start = i
            while i < n and source[i] in _IDENT_CONT:
                i += 1
            word = source[start:i]
            low = word.lower()
            if low in KEYWORDS:
                tokens.append(Token("kw", low, line))
            else:
                tokens.append(Token("id", word, line))
            continue
        if ch in _DIGITS:
            start = i
            while i < n and (source[i] in _DIGITS or source[i] == "_"):
                i += 1
            if i < n and source[i] == "#":
                base = int(source[start:i].replace("_", ""))
                if not 2 <= base <= 16:
                    raise LexError(f"bad numeric base {base}", line)
                i += 1
                dstart = i
                while i < n and (source[i].isalnum() or source[i] == "_"):
                    i += 1
                digits = source[dstart:i].replace("_", "")
                if i >= n or source[i] != "#":
                    raise LexError("unterminated based literal", line)
                i += 1
                try:
                    value = int(digits, base)
                except ValueError:
                    raise LexError(f"bad digits '{digits}' for base {base}", line)
                tokens.append(Token("int", value, line))
            else:
                value = int(source[start:i].replace("_", ""))
                tokens.append(Token("int", value, line))
            continue
        for sym in SYMBOLS:
            if source.startswith(sym, i):
                tokens.append(Token("sym", sym, line))
                i += len(sym)
                break
        else:
            raise LexError(f"unexpected character {ch!r}", line)
    tokens.append(Token("eof", None, line))
    return tokens
