"""Canonical pretty-printer for MiniAda.

The printer defines the *measured text* of a program: the paper's
lines-of-code figures (figure 2(a)) are taken over refactored source text,
so every metric in :mod:`repro.metrics.elements` is computed from this
printer's output rather than from whatever formatting a source file happened
to use.  Output is stable: parse(print(parse(s))) == parse(s).
"""

from __future__ import annotations

from typing import List, Tuple

from . import ast

__all__ = ["print_package", "print_subprogram", "print_expr", "print_stmt"]

_INDENT = "   "

# Precedence levels for parenthesization (higher binds tighter).
_LOGICAL_LEVEL = 1
_RELATION_LEVEL = 2
_ADD_LEVEL = 3
_MUL_LEVEL = 4
_UNARY_LEVEL = 5
_PRIMARY_LEVEL = 6

_OP_LEVEL = {
    "and": _LOGICAL_LEVEL, "or": _LOGICAL_LEVEL, "xor": _LOGICAL_LEVEL,
    "and_then": _LOGICAL_LEVEL, "or_else": _LOGICAL_LEVEL,
    "=": _RELATION_LEVEL, "/=": _RELATION_LEVEL, "<": _RELATION_LEVEL,
    "<=": _RELATION_LEVEL, ">": _RELATION_LEVEL, ">=": _RELATION_LEVEL,
    "+": _ADD_LEVEL, "-": _ADD_LEVEL,
    "*": _MUL_LEVEL, "/": _MUL_LEVEL, "mod": _MUL_LEVEL,
}

_OP_TEXT = {"and_then": "and then", "or_else": "or else"}


def _int_text(value: int) -> str:
    if value > 255:
        return f"16#{value:X}#"
    return str(value)


def print_expr(expr: ast.Expr) -> str:
    text, _ = _expr(expr)
    return text


def _expr(expr: ast.Expr) -> Tuple[str, int]:
    """Return (text, precedence level of the outermost operator)."""
    if isinstance(expr, ast.IntLit):
        return _int_text(expr.value), _PRIMARY_LEVEL
    if isinstance(expr, ast.BoolLit):
        return ("True" if expr.value else "False"), _PRIMARY_LEVEL
    if isinstance(expr, ast.Name):
        return expr.id, _PRIMARY_LEVEL
    if isinstance(expr, ast.OldExpr):
        return f"{expr.name}~", _PRIMARY_LEVEL
    if isinstance(expr, (ast.ArrayRef, ast.App)):
        return _application(expr), _PRIMARY_LEVEL
    if isinstance(expr, ast.FuncCall):
        args = ", ".join(print_expr(a) for a in expr.args)
        return f"{expr.name} ({args})", _PRIMARY_LEVEL
    if isinstance(expr, ast.Conversion):
        return f"{expr.type_name} ({print_expr(expr.operand)})", _PRIMARY_LEVEL
    if isinstance(expr, ast.UnOp):
        inner = _child(expr.operand, _UNARY_LEVEL)
        if expr.op == "not":
            return f"not {inner}", _UNARY_LEVEL
        return f"-{inner}", _UNARY_LEVEL
    if isinstance(expr, ast.BinOp):
        level = _OP_LEVEL[expr.op]
        op_text = _OP_TEXT.get(expr.op, expr.op)
        left = _child(expr.left, level, same_logical_op=expr.op)
        right = _child(expr.right, level + 1, same_logical_op=expr.op)
        return f"{left} {op_text} {right}", level
    if isinstance(expr, ast.Aggregate):
        parts = [print_expr(item) for item in expr.items]
        if expr.others is not None:
            parts.append(f"others => {print_expr(expr.others)}")
        return f"({', '.join(parts)})", _PRIMARY_LEVEL
    if isinstance(expr, ast.ForAll):
        return (f"(for all {expr.var} in {print_expr(expr.lo)} .. "
                f"{print_expr(expr.hi)} => {print_expr(expr.body)})",
                _PRIMARY_LEVEL)
    raise TypeError(f"cannot print {type(expr).__name__}")


def _child(expr: ast.Expr, min_level: int, same_logical_op: str = None) -> str:
    text, level = _expr(expr)
    needs_parens = level < min_level
    # Ada requires parentheses when mixing different logical operators.
    if (not needs_parens and same_logical_op is not None
            and isinstance(expr, ast.BinOp)
            and _OP_LEVEL.get(expr.op) == _LOGICAL_LEVEL
            and expr.op != same_logical_op):
        needs_parens = True
    return f"({text})" if needs_parens else text


def _application(expr: ast.Expr) -> str:
    if isinstance(expr, ast.ArrayRef):
        return f"{_application(expr.base)} ({print_expr(expr.index)})"
    if isinstance(expr, ast.App):
        args = ", ".join(print_expr(a) for a in expr.args)
        return f"{_application(expr.prefix)} ({args})"
    return print_expr(expr)


def _wrap_aggregate(prefix: str, agg: ast.Aggregate, indent: str,
                    lines: List[str]):
    """Emit a long aggregate wrapped at roughly 76 columns."""
    parts = [print_expr(item) for item in agg.items]
    if agg.others is not None:
        parts.append(f"others => {print_expr(agg.others)}")
    line = f"{indent}{prefix}("
    column_indent = " " * len(line)
    current = line
    for i, part in enumerate(parts):
        piece = part + ("," if i < len(parts) - 1 else "")
        if len(current) + len(piece) + 1 > 78 and current.strip() != "":
            lines.append(current.rstrip())
            current = column_indent
        current += piece + " "
    lines.append(current.rstrip() + ");")


def print_stmt(stmt: ast.Stmt, depth: int = 0) -> List[str]:
    indent = _INDENT * depth
    if isinstance(stmt, ast.Assign):
        return [f"{indent}{print_expr(stmt.target)} := {print_expr(stmt.value)};"]
    if isinstance(stmt, ast.Null):
        return [f"{indent}null;"]
    if isinstance(stmt, ast.Return):
        if stmt.value is None:
            return [f"{indent}return;"]
        return [f"{indent}return {print_expr(stmt.value)};"]
    if isinstance(stmt, ast.Assert):
        return [f"{indent}--# assert {print_expr(stmt.expr)};"]
    if isinstance(stmt, ast.ProcCall):
        if stmt.args:
            args = ", ".join(print_expr(a) for a in stmt.args)
            return [f"{indent}{stmt.name} ({args});"]
        return [f"{indent}{stmt.name};"]
    if isinstance(stmt, ast.If):
        lines = []
        for i, (cond, body) in enumerate(stmt.branches):
            kw = "if" if i == 0 else "elsif"
            lines.append(f"{indent}{kw} {print_expr(cond)} then")
            for s in body:
                lines.extend(print_stmt(s, depth + 1))
        if stmt.else_body:
            lines.append(f"{indent}else")
            for s in stmt.else_body:
                lines.extend(print_stmt(s, depth + 1))
        lines.append(f"{indent}end if;")
        return lines
    if isinstance(stmt, ast.For):
        reverse = "reverse " if stmt.reverse else ""
        lines = [f"{indent}for {stmt.var} in {reverse}{print_expr(stmt.lo)} .. "
                 f"{print_expr(stmt.hi)} loop"]
        for s in stmt.body:
            lines.extend(print_stmt(s, depth + 1))
        lines.append(f"{indent}end loop;")
        return lines
    if isinstance(stmt, ast.While):
        lines = [f"{indent}while {print_expr(stmt.cond)} loop"]
        for s in stmt.body:
            lines.extend(print_stmt(s, depth + 1))
        lines.append(f"{indent}end loop;")
        return lines
    raise TypeError(f"cannot print {type(stmt).__name__}")


def _print_param(p: ast.Param) -> str:
    return f"{p.name} : {p.mode} {p.type_name}"


def print_subprogram(sp: ast.Subprogram, depth: int = 1) -> List[str]:
    indent = _INDENT * depth
    lines = []
    if sp.params:
        params = "; ".join(_print_param(p) for p in sp.params)
        header = f"{sp.name} ({params})"
    else:
        header = sp.name
    if sp.is_function:
        lines.append(f"{indent}function {header} return {sp.return_type}")
    else:
        lines.append(f"{indent}procedure {header}")
    for e in sp.pre:
        lines.append(f"{indent}--# pre {print_expr(e)};")
    for e in sp.post:
        lines.append(f"{indent}--# post {print_expr(e)};")
    lines.append(f"{indent}is")
    for d in sp.decls:
        init = f" := {print_expr(d.init)}" if d.init is not None else ""
        lines.append(f"{indent}{_INDENT}{d.name} : {d.type_name}{init};")
    lines.append(f"{indent}begin")
    for s in sp.body:
        lines.extend(print_stmt(s, depth + 1))
    lines.append(f"{indent}end {sp.name};")
    return lines


def print_package(pkg: ast.Package) -> str:
    lines = [f"package {pkg.name} is", ""]
    for d in pkg.decls:
        if isinstance(d, ast.ModTypeDecl):
            lines.append(f"{_INDENT}type {d.name} is mod {d.modulus};")
        elif isinstance(d, ast.RangeTypeDecl):
            lines.append(f"{_INDENT}type {d.name} is range {d.lo} .. {d.hi};")
        elif isinstance(d, ast.SubtypeDecl):
            lines.append(
                f"{_INDENT}subtype {d.name} is {d.base} range {d.lo} .. {d.hi};")
        elif isinstance(d, ast.ArrayTypeDecl):
            lines.append(f"{_INDENT}type {d.name} is array ({d.lo} .. {d.hi}) "
                         f"of {d.elem_type};")
        elif isinstance(d, ast.ConstDecl):
            if isinstance(d.value, ast.Aggregate):
                _wrap_aggregate(f"{d.name} : constant {d.type_name} := ",
                                d.value, _INDENT, lines)
            else:
                lines.append(f"{_INDENT}{d.name} : constant {d.type_name} := "
                             f"{print_expr(d.value)};")
        elif isinstance(d, ast.ProofFunctionDecl):
            if d.params:
                params = "; ".join(_print_param(p) for p in d.params)
                lines.append(f"{_INDENT}--# function {d.name} ({params}) "
                             f"return {d.return_type};")
            else:
                lines.append(f"{_INDENT}--# function {d.name} "
                             f"return {d.return_type};")
        elif isinstance(d, ast.ProofRuleDecl):
            if d.params:
                params = "; ".join(_print_param(p) for p in d.params)
                lines.append(f"{_INDENT}--# rule {d.name} ({params}): "
                             f"{print_expr(d.expr)};")
            else:
                lines.append(
                    f"{_INDENT}--# rule {d.name}: {print_expr(d.expr)};")
        else:  # pragma: no cover - defensive
            raise TypeError(f"cannot print declaration {type(d).__name__}")
    lines.append("")
    for sp in pkg.subprograms:
        lines.extend(print_subprogram(sp))
        lines.append("")
    lines.append(f"end {pkg.name};")
    return "\n".join(lines) + "\n"
