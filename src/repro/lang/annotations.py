"""Annotation utilities: counting (paper Table 1) and stripping.

In the paper, annotations are SPARK comment lines (``--# pre``, ``--# post``,
``--# assert``) plus proof functions and proof rules.  Table 1 reports the
*lines* of each annotation category in the fully annotated refactored AES;
our canonical printer emits one line per annotation, so counting annotation
nodes counts lines.

Stripping annotations (or replacing every postcondition with ``true``) is
how the paper measured VC metrics *before* annotation was complete
(section 6.2.2: "we set the postconditions for all subprograms to true for
each version of the refactored code").
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass

from . import ast

__all__ = ["AnnotationCounts", "count_annotations", "strip_annotations",
           "with_true_postconditions"]


@dataclass(frozen=True)
class AnnotationCounts:
    """Annotation line counts, matching the rows of Table 1."""

    preconditions: int
    postconditions: int
    invariants_and_asserts: int
    proof_functions_rules_other: int

    @property
    def total(self) -> int:
        return (self.preconditions + self.postconditions
                + self.invariants_and_asserts + self.proof_functions_rules_other)


def count_annotations(pkg: ast.Package) -> AnnotationCounts:
    pre = post = asserts = proof = 0
    for d in pkg.decls:
        if isinstance(d, (ast.ProofFunctionDecl, ast.ProofRuleDecl)):
            proof += 1
    for sp in pkg.subprograms:
        pre += len(sp.pre)
        post += len(sp.post)
        for node in ast.walk(sp):
            if isinstance(node, ast.Assert):
                asserts += 1
    return AnnotationCounts(
        preconditions=pre,
        postconditions=post,
        invariants_and_asserts=asserts,
        proof_functions_rules_other=proof,
    )


def _strip_stmts(stmts):
    out = []
    for s in stmts:
        if isinstance(s, ast.Assert):
            continue
        if isinstance(s, ast.If):
            branches = tuple((c, _strip_stmts(b)) for c, b in s.branches)
            out.append(ast.If(branches=branches,
                              else_body=_strip_stmts(s.else_body)))
        elif isinstance(s, ast.For):
            out.append(dataclasses.replace(s, body=_strip_stmts(s.body)))
        elif isinstance(s, ast.While):
            out.append(dataclasses.replace(s, body=_strip_stmts(s.body)))
        else:
            out.append(s)
    return tuple(out)


def strip_annotations(pkg: ast.Package) -> ast.Package:
    """Remove every annotation: pre/post, asserts, proof functions/rules."""
    decls = tuple(d for d in pkg.decls
                  if not isinstance(d, (ast.ProofFunctionDecl, ast.ProofRuleDecl)))
    subprograms = tuple(
        dataclasses.replace(sp, pre=(), post=(), body=_strip_stmts(sp.body))
        for sp in pkg.subprograms)
    return dataclasses.replace(pkg, decls=decls, subprograms=subprograms)


def with_true_postconditions(pkg: ast.Package) -> ast.Package:
    """The paper's pre-annotation measurement configuration: drop user
    pre/post (equivalent to setting postconditions to ``true``) but keep the
    code, so only exception-freedom and cut-point VCs are generated."""
    subprograms = tuple(
        dataclasses.replace(sp, pre=(), post=())
        for sp in pkg.subprograms)
    return dataclasses.replace(pkg, subprograms=subprograms)
