"""Name resolution and type checking for MiniAda.

``analyze`` takes a parsed :class:`~repro.lang.ast.Package` and returns a
:class:`TypedPackage`:

* every syntactic application ``F (X)`` is resolved into an
  :class:`~repro.lang.ast.ArrayRef` or :class:`~repro.lang.ast.FuncCall`;
* constants are evaluated to Python values (tables become tuples);
* per-subprogram contexts provide ``infer`` for expression typing, used by
  the interpreter, the VC generator and the extractor.

All static errors are collected and raised together as one
:class:`~repro.lang.errors.TypeError_` so a defective program reports every
problem at once.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Tuple

from . import ast
from .errors import TypeError_
from .types import (
    ArrayType, BOOLEAN, BooleanType, INTEGER, ModularType,
    RangeType, Type, UNIV_INT, compatible, is_integerish,
)

__all__ = ["TypedPackage", "SubprogramContext", "analyze", "BUILTIN_FUNCTIONS"]

#: Builtin intrinsic functions: name -> (is_shift,) -- shifts are generic in
#: their first (modular) argument, as in Ada's Interfaces package.
BUILTIN_FUNCTIONS = frozenset(["Shift_Left", "Shift_Right"])

_ARITH_OPS = frozenset(["+", "-", "*", "/", "mod"])
_REL_OPS = frozenset(["=", "/=", "<", "<=", ">", ">="])
_LOGIC_OPS = frozenset(["and", "or", "xor"])
_SHORT_OPS = frozenset(["and_then", "or_else"])


class SubprogramContext:
    """Typing context for one subprogram: parameters, locals, loop vars."""

    def __init__(self, typed: "TypedPackage", subprogram: ast.Subprogram):
        self.typed = typed
        self.subprogram = subprogram
        self.vars: Dict[str, Type] = {}
        self.modes: Dict[str, str] = {}
        for p in subprogram.params:
            self.vars[p.name] = typed.type_named(p.type_name)
            self.modes[p.name] = p.mode
        for d in subprogram.decls:
            self.vars[d.name] = typed.type_named(d.type_name)
            self.modes[d.name] = "local"
        self._loop_vars: List[str] = []

    def push_loop_var(self, name: str):
        self._loop_vars.append(name)

    def pop_loop_var(self):
        self._loop_vars.pop()

    def runtime_view(self) -> "SubprogramContext":
        """A view of this context with a private loop-variable stack.

        The table lookups (``vars``, ``modes``, the typed package) are
        shared read-only; ``_loop_vars`` is mutated by every executor that
        walks a For/ForAll, so concurrent interpreters must each push/pop
        on their own stack rather than on the canonical context stored in
        ``TypedPackage._contexts``."""
        view = SubprogramContext.__new__(SubprogramContext)
        view.typed = self.typed
        view.subprogram = self.subprogram
        view.vars = self.vars
        view.modes = self.modes
        view._loop_vars = []
        return view

    def var_type(self, name: str) -> Optional[Type]:
        if name in self._loop_vars:
            return INTEGER
        if name in self.vars:
            return self.vars[name]
        const = self.typed.constants.get(name)
        if const is not None:
            return const[0]
        return None

    def infer(self, expr: ast.Expr) -> Type:
        """Type of a *resolved* expression; raises TypeError_ if untypable."""
        return self.typed._infer(expr, self)


class TypedPackage:
    """A resolved, type-checked package plus its symbol tables."""

    def __init__(self, package: ast.Package):
        self.package = package
        self.types: Dict[str, Type] = {"Integer": INTEGER, "Boolean": BOOLEAN}
        self.constants: Dict[str, Tuple[Type, object]] = {}
        self.proof_functions: Dict[str, ast.ProofFunctionDecl] = {}
        self.proof_rules: List[ast.ProofRuleDecl] = []
        self.signatures: Dict[str, ast.Subprogram] = {}
        self._contexts: Dict[str, SubprogramContext] = {}
        self.errors: List[str] = []

    # -- symbol lookup ---------------------------------------------------

    def type_named(self, name: str) -> Type:
        t = self.types.get(name)
        if t is None:
            self.errors.append(f"unknown type '{name}'")
            return INTEGER
        return t

    def context(self, subprogram_name: str) -> SubprogramContext:
        return self._contexts[subprogram_name]

    def is_array_name(self, name: str, ctx: Optional[SubprogramContext]) -> bool:
        t = None
        if ctx is not None:
            t = ctx.var_type(name)
        if t is None and name in self.constants:
            t = self.constants[name][0]
        return isinstance(t, ArrayType)

    def is_function_name(self, name: str) -> bool:
        if name in BUILTIN_FUNCTIONS or name in self.proof_functions:
            return True
        sig = self.signatures.get(name)
        return sig is not None and sig.is_function

    # -- expression typing -------------------------------------------------

    def _infer(self, expr: ast.Expr, ctx: Optional[SubprogramContext]) -> Type:
        if isinstance(expr, ast.IntLit):
            return UNIV_INT
        if isinstance(expr, ast.BoolLit):
            return BOOLEAN
        if isinstance(expr, ast.Name):
            t = ctx.var_type(expr.id) if ctx else None
            if t is None and expr.id in self.constants:
                t = self.constants[expr.id][0]
            if t is None:
                raise TypeError_(f"unknown name '{expr.id}'")
            return t
        if isinstance(expr, ast.OldExpr):
            t = ctx.var_type(expr.name) if ctx else None
            if t is None:
                raise TypeError_(f"unknown name '{expr.name}~'")
            return t
        if isinstance(expr, ast.ArrayRef):
            base_t = self._infer(expr.base, ctx)
            if not isinstance(base_t, ArrayType):
                raise TypeError_("indexing a non-array value")
            return base_t.elem
        if isinstance(expr, ast.FuncCall):
            return self._infer_call(expr, ctx)
        if isinstance(expr, ast.Conversion):
            target = self.type_named(expr.type_name)
            operand_t = self._infer(expr.operand, ctx)
            if not (is_integerish(target) and is_integerish(operand_t)):
                raise TypeError_(
                    f"conversion {expr.type_name} needs integer operand")
            return target
        if isinstance(expr, ast.UnOp):
            operand_t = self._infer(expr.operand, ctx)
            if expr.op == "not":
                if isinstance(operand_t, BooleanType) or isinstance(operand_t, ModularType):
                    return operand_t
                raise TypeError_("'not' needs a Boolean or modular operand")
            if expr.op == "-":
                if is_integerish(operand_t):
                    return INTEGER if operand_t is UNIV_INT else operand_t
                raise TypeError_("unary '-' needs an integer operand")
            raise TypeError_(f"unknown unary op {expr.op}")
        if isinstance(expr, ast.BinOp):
            return self._infer_binop(expr, ctx)
        if isinstance(expr, ast.ForAll):
            ctx.push_loop_var(expr.var)
            try:
                body_t = self._infer(expr.body, ctx)
            finally:
                ctx.pop_loop_var()
            if not isinstance(body_t, BooleanType):
                raise TypeError_("'for all' body must be Boolean")
            return BOOLEAN
        if isinstance(expr, ast.Aggregate):
            raise TypeError_("aggregate used outside an array context")
        if isinstance(expr, ast.App):
            raise TypeError_("internal: unresolved application survived resolution")
        raise TypeError_(f"cannot type {type(expr).__name__}")

    def _infer_call(self, expr: ast.FuncCall, ctx) -> Type:
        if expr.name in BUILTIN_FUNCTIONS:
            if len(expr.args) != 2:
                raise TypeError_(f"{expr.name} takes 2 arguments")
            arg_t = self._infer(expr.args[0], ctx)
            amount_t = self._infer(expr.args[1], ctx)
            if not isinstance(arg_t, ModularType):
                raise TypeError_(f"{expr.name} needs a modular first argument")
            if not is_integerish(amount_t):
                raise TypeError_(f"{expr.name} shift amount must be integer")
            return arg_t
        proof_fn = self.proof_functions.get(expr.name)
        if proof_fn is not None:
            if len(expr.args) != len(proof_fn.params):
                raise TypeError_(f"proof function {expr.name} arity mismatch")
            for arg, p in zip(expr.args, proof_fn.params):
                at = self._infer(arg, ctx)
                if not compatible(self.type_named(p.type_name), at):
                    raise TypeError_(f"argument type mismatch in {expr.name}")
            return self.type_named(proof_fn.return_type)
        sig = self.signatures.get(expr.name)
        if sig is None or not sig.is_function:
            raise TypeError_(f"'{expr.name}' is not a function")
        if len(expr.args) != len(sig.params):
            raise TypeError_(f"call to {expr.name}: expected {len(sig.params)} "
                             f"arguments, got {len(expr.args)}")
        for arg, p in zip(expr.args, sig.params):
            at = self._infer(arg, ctx)
            if not compatible(self.type_named(p.type_name), at):
                raise TypeError_(
                    f"call to {expr.name}: argument '{p.name}' type mismatch")
        return self.type_named(sig.return_type)

    def _infer_binop(self, expr: ast.BinOp, ctx) -> Type:
        lt = self._infer(expr.left, ctx)
        rt = self._infer(expr.right, ctx)
        op = expr.op
        if op in _ARITH_OPS:
            if not (is_integerish(lt) and is_integerish(rt)):
                raise TypeError_(f"'{op}' needs integer operands")
            if isinstance(lt, ModularType):
                result = lt
            elif isinstance(rt, ModularType):
                result = rt
            else:
                result = INTEGER
            if not compatible(lt, rt):
                raise TypeError_(f"'{op}' operand types {lt.name}/{rt.name} differ")
            return result
        if op in _REL_OPS:
            if not compatible(lt, rt):
                raise TypeError_(
                    f"comparison of incompatible types {lt.name}/{rt.name}")
            if op not in ("=", "/=") and not (is_integerish(lt) and is_integerish(rt)):
                raise TypeError_(f"ordering '{op}' needs integer operands")
            return BOOLEAN
        if op in _SHORT_OPS:
            if isinstance(lt, BooleanType) and isinstance(rt, BooleanType):
                return BOOLEAN
            raise TypeError_(f"'{op}' needs Boolean operands")
        if op in _LOGIC_OPS:
            if isinstance(lt, BooleanType) and isinstance(rt, BooleanType):
                return BOOLEAN
            if isinstance(lt, ModularType) and compatible(lt, rt):
                return lt
            if isinstance(rt, ModularType) and compatible(rt, lt):
                return rt
            raise TypeError_(f"'{op}' needs Boolean or matching modular operands")
        raise TypeError_(f"unknown operator {op}")


# ---------------------------------------------------------------------------
# Constant evaluation
# ---------------------------------------------------------------------------

def _eval_const(expr: ast.Expr, typed: TypedPackage, target: Optional[Type]):
    if isinstance(expr, ast.IntLit):
        return expr.value
    if isinstance(expr, ast.BoolLit):
        return expr.value
    if isinstance(expr, ast.UnOp) and expr.op == "-":
        return -_eval_const(expr.operand, typed, target)
    if isinstance(expr, ast.Name):
        const = typed.constants.get(expr.id)
        if const is None:
            raise TypeError_(f"constant initializer references unknown '{expr.id}'")
        return const[1]
    if isinstance(expr, ast.BinOp):
        left = _eval_const(expr.left, typed, None)
        right = _eval_const(expr.right, typed, None)
        ops = {"+": lambda a, b: a + b, "-": lambda a, b: a - b,
               "*": lambda a, b: a * b, "/": lambda a, b: int(a / b),
               "mod": lambda a, b: a % b, "xor": lambda a, b: a ^ b,
               "and": lambda a, b: a & b, "or": lambda a, b: a | b}
        if expr.op not in ops:
            raise TypeError_(f"operator '{expr.op}' not allowed in constants")
        return ops[expr.op](left, right)
    if isinstance(expr, ast.Aggregate):
        if not isinstance(target, ArrayType):
            raise TypeError_("aggregate initializer for a non-array constant")
        items = [_eval_const(e, typed, target.elem) for e in expr.items]
        if expr.others is not None:
            fill = _eval_const(expr.others, typed, target.elem)
            items.extend([fill] * (target.length - len(items)))
        if len(items) != target.length:
            raise TypeError_(
                f"aggregate has {len(items)} components, array needs {target.length}")
        return tuple(items)
    raise TypeError_(f"expression not allowed in a constant: {type(expr).__name__}")


# ---------------------------------------------------------------------------
# Resolution of App nodes
# ---------------------------------------------------------------------------

def _resolve_expr(expr: ast.Expr, typed: TypedPackage,
                  ctx: Optional[SubprogramContext]) -> ast.Expr:
    def resolve(node):
        if isinstance(node, ast.App):
            prefix = node.prefix
            if isinstance(prefix, ast.Name):
                if prefix.id in typed.types:
                    if len(node.args) != 1:
                        typed.errors.append(
                            f"type conversion {prefix.id} takes one operand")
                        return node
                    return ast.Conversion(type_name=prefix.id,
                                          operand=node.args[0])
                if typed.is_function_name(prefix.id):
                    return ast.FuncCall(name=prefix.id, args=node.args)
                if typed.is_array_name(prefix.id, ctx):
                    if len(node.args) != 1:
                        typed.errors.append(
                            f"array '{prefix.id}' indexed with {len(node.args)} "
                            f"indices (use nested indexing)")
                        return node
                    return ast.ArrayRef(base=prefix, index=node.args[0])
                typed.errors.append(f"'{prefix.id}' is neither array nor function")
                return node
            # Nested application: prefix already resolved to an ArrayRef.
            if len(node.args) == 1:
                return ast.ArrayRef(base=prefix, index=node.args[0])
            typed.errors.append("chained application with multiple arguments")
            return node
        return node

    return ast.transform_bottom_up(expr, resolve)


class _BodyChecker:
    """Resolves and checks statements of one subprogram."""

    def __init__(self, typed: TypedPackage, ctx: SubprogramContext):
        self.typed = typed
        self.ctx = ctx

    def error(self, message: str):
        self.typed.errors.append(f"{self.ctx.subprogram.name}: {message}")

    def resolve_expr(self, expr: ast.Expr, want: Optional[Type] = None) -> ast.Expr:
        resolved = _resolve_expr(expr, self.typed, self.ctx)
        if isinstance(resolved, ast.Aggregate):
            if not isinstance(want, ArrayType):
                self.error("aggregate outside array context")
            return resolved
        try:
            actual = self.ctx.infer(resolved)
            if want is not None and not compatible(want, actual):
                self.error(f"expected {want.name}, got {actual.name}")
        except TypeError_ as exc:
            self.error(str(exc))
        return resolved

    def check_stmts(self, stmts: Tuple[ast.Stmt, ...]) -> Tuple[ast.Stmt, ...]:
        return tuple(self.check_stmt(s) for s in stmts)

    def check_stmt(self, stmt: ast.Stmt) -> ast.Stmt:
        if isinstance(stmt, ast.Assign):
            target = _resolve_expr(stmt.target, self.typed, self.ctx)
            if not isinstance(target, (ast.Name, ast.ArrayRef)):
                self.error("assignment target must be a variable or array component")
                want = None
            else:
                if isinstance(target, ast.Name):
                    if (target.id in self.typed.constants
                            and target.id not in self.ctx.vars):
                        self.error(f"assignment to constant '{target.id}'")
                try:
                    want = self.ctx.infer(target)
                except TypeError_ as exc:
                    self.error(str(exc))
                    want = None
            value = self.resolve_expr(stmt.value, want)
            return ast.Assign(target=target, value=value)
        if isinstance(stmt, ast.If):
            branches = tuple(
                (self.resolve_expr(cond, BOOLEAN), self.check_stmts(body))
                for cond, body in stmt.branches)
            return ast.If(branches=branches, else_body=self.check_stmts(stmt.else_body))
        if isinstance(stmt, ast.For):
            lo = self.resolve_expr(stmt.lo, INTEGER)
            hi = self.resolve_expr(stmt.hi, INTEGER)
            self.ctx.push_loop_var(stmt.var)
            try:
                body = self.check_stmts(stmt.body)
            finally:
                self.ctx.pop_loop_var()
            return ast.For(var=stmt.var, lo=lo, hi=hi, body=body, reverse=stmt.reverse)
        if isinstance(stmt, ast.While):
            cond = self.resolve_expr(stmt.cond, BOOLEAN)
            return ast.While(cond=cond, body=self.check_stmts(stmt.body))
        if isinstance(stmt, ast.ProcCall):
            sig = self.typed.signatures.get(stmt.name)
            if sig is None or sig.is_function:
                self.error(f"'{stmt.name}' is not a procedure")
                return stmt
            if len(stmt.args) != len(sig.params):
                self.error(f"call to {stmt.name}: arity mismatch")
            args = []
            for arg, param in zip(stmt.args, sig.params):
                want = self.typed.type_named(param.type_name)
                resolved = self.resolve_expr(arg, want)
                if param.mode != "in" and not isinstance(
                        resolved, (ast.Name, ast.ArrayRef)):
                    self.error(f"call to {stmt.name}: '{param.name}' is an out "
                               f"parameter and needs a variable argument")
                args.append(resolved)
            return ast.ProcCall(name=stmt.name, args=tuple(args))
        if isinstance(stmt, ast.Return):
            sp = self.ctx.subprogram
            if sp.is_function:
                if stmt.value is None:
                    self.error("function return must carry a value")
                    return stmt
                want = self.typed.type_named(sp.return_type)
                return ast.Return(value=self.resolve_expr(stmt.value, want))
            if stmt.value is not None:
                self.error("procedure return must not carry a value")
            return stmt
        if isinstance(stmt, ast.Assert):
            return ast.Assert(expr=self.resolve_expr(stmt.expr, BOOLEAN))
        return stmt


def analyze(package: ast.Package) -> TypedPackage:
    """Resolve and type-check ``package``; raises TypeError_ on any error."""
    typed = TypedPackage(package)

    # Pass 1: types.
    for d in package.decls:
        if isinstance(d, ast.ModTypeDecl):
            typed.types[d.name] = ModularType(d.name, modulus=d.modulus)
        elif isinstance(d, ast.RangeTypeDecl):
            typed.types[d.name] = RangeType(d.name, lo=d.lo, hi=d.hi)
        elif isinstance(d, ast.SubtypeDecl):
            typed.types[d.name] = RangeType(d.name, lo=d.lo, hi=d.hi)
        elif isinstance(d, ast.ArrayTypeDecl):
            elem = typed.types.get(d.elem_type)
            if elem is None:
                typed.errors.append(
                    f"array type {d.name}: unknown element type {d.elem_type}")
                elem = INTEGER
            typed.types[d.name] = ArrayType(d.name, lo=d.lo, hi=d.hi, elem=elem)

    # Pass 2: proof functions (before constants/signatures so annotations
    # can call them), subprogram signatures.
    for d in package.decls:
        if isinstance(d, ast.ProofFunctionDecl):
            typed.proof_functions[d.name] = d
    for sp in package.subprograms:
        if sp.name in typed.signatures:
            typed.errors.append(f"duplicate subprogram '{sp.name}'")
        typed.signatures[sp.name] = sp

    # Pass 3: constants (may reference earlier constants).
    for d in package.decls:
        if isinstance(d, ast.ConstDecl):
            ctype = typed.type_named(d.type_name)
            try:
                value = _eval_const(d.value, typed, ctype)
            except TypeError_ as exc:
                typed.errors.append(f"constant {d.name}: {exc}")
                value = 0
            typed.constants[d.name] = (ctype, value)

    # Pass 4: proof rules (package-level annotation expressions are resolved
    # against a pseudo-context with no locals).
    dummy = ast.Subprogram(name="<package>", params=(), return_type=None,
                           decls=(), body=())
    package_ctx = SubprogramContext(typed, dummy)
    new_decls = []
    for d in package.decls:
        if isinstance(d, ast.ProofRuleDecl):
            rule_sp = ast.Subprogram(name=f"<rule {d.name}>", params=d.params,
                                     return_type=None, decls=(), body=())
            rule_ctx = SubprogramContext(typed, rule_sp)
            resolved = _resolve_expr(d.expr, typed, rule_ctx)
            try:
                t = typed._infer(resolved, rule_ctx)
                if not isinstance(t, BooleanType):
                    typed.errors.append(f"proof rule {d.name} is not Boolean")
            except TypeError_ as exc:
                typed.errors.append(f"proof rule {d.name}: {exc}")
            d = ast.ProofRuleDecl(name=d.name, expr=resolved, params=d.params)
            typed.proof_rules.append(d)
        new_decls.append(d)
    package = dataclasses.replace(package, decls=tuple(new_decls))
    typed.package = package

    # Pass 5: subprogram bodies (resolve Apps, check statements and
    # annotations), producing a fully resolved package.
    new_subprograms = []
    for sp in package.subprograms:
        ctx = SubprogramContext(typed, sp)
        typed._contexts[sp.name] = ctx
        checker = _BodyChecker(typed, ctx)
        # 'Result' names the function result in postconditions.
        if sp.is_function:
            ctx.vars.setdefault("Result", typed.type_named(sp.return_type))
            ctx.modes.setdefault("Result", "result")
        pre = tuple(checker.resolve_expr(e, BOOLEAN) for e in sp.pre)
        post = tuple(checker.resolve_expr(e, BOOLEAN) for e in sp.post)
        decls = []
        for d in sp.decls:
            want = typed.type_named(d.type_name)
            init = checker.resolve_expr(d.init, want) if d.init is not None else None
            decls.append(ast.VarDecl(name=d.name, type_name=d.type_name, init=init))
        body = checker.check_stmts(sp.body)
        new_sp = dataclasses.replace(
            sp, pre=pre, post=post, decls=tuple(decls), body=body)
        new_subprograms.append(new_sp)
        ctx.subprogram = new_sp

    typed.package = dataclasses.replace(
        package, subprograms=tuple(new_subprograms))
    # Re-point signatures at the resolved subprograms.
    for sp in typed.package.subprograms:
        typed.signatures[sp.name] = sp

    if typed.errors:
        raise TypeError_("; ".join(typed.errors[:20]) +
                         (f" (+{len(typed.errors) - 20} more)"
                          if len(typed.errors) > 20 else ""))
    return typed
