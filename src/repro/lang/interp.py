"""Concrete interpreter for MiniAda.

The interpreter provides the *dynamic semantics* against which everything
else is judged:

* differential testing of refactoring transformations (equal initial state
  must produce equal final state -- the paper's semantics-preservation
  theorem, section 5.1);
* validation of the AES implementation against FIPS-197 test vectors;
* the observable behaviour of seeded defects (section 7).

Run-time checks (array bounds, subtype ranges, division by zero, assertion
failures) raise :class:`~repro.lang.errors.RuntimeFault`; these correspond
exactly to SPARK's exception-freedom proof obligations.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from . import ast
from .errors import RuntimeFault, StepLimitExceeded, TypeError_
from .typecheck import TypedPackage
from .types import ArrayType, BooleanType, ModularType, RangeType, Type

__all__ = ["Interpreter", "make_default_value", "deep_copy_value"]


class _ReturnSignal(Exception):
    def __init__(self, value):
        self.value = value


def make_default_value(t: Type):
    """An 'uninitialized' value of type ``t``: scalars are None (reading one
    faults), arrays are allocated with uninitialized elements."""
    if isinstance(t, ArrayType):
        return [make_default_value(t.elem) for _ in range(t.length)]
    return None


def deep_copy_value(value):
    if isinstance(value, list):
        return [deep_copy_value(v) for v in value]
    return value


class Interpreter:
    """Executes subprograms of one type-checked package."""

    def __init__(self, typed: TypedPackage, step_limit: int = 50_000_000,
                 check_asserts: bool = True):
        self.typed = typed
        self.step_limit = step_limit
        self.check_asserts = check_asserts
        self.steps = 0
        self._type_cache: Dict[tuple, Type] = {}
        #: per-interpreter runtime contexts: loop-variable push/pop during
        #: execution must not mutate the shared contexts on ``typed`` (two
        #: interpreters on different threads would corrupt each other's
        #: loop-variable stacks mid-loop).
        self._ctx_cache: Dict[str, object] = {}

    # -- public entry points -------------------------------------------------

    def call_function(self, name: str, args: List):
        """Call a function subprogram with positional argument values."""
        sp = self.typed.signatures[name]
        if not sp.is_function:
            raise TypeError_(f"'{name}' is not a function")
        return self._invoke(sp, list(args))["Result"]

    def call_procedure(self, name: str, args: List) -> Dict[str, object]:
        """Call a procedure with positional argument values; returns a dict
        of the out/in-out parameter values after the call."""
        sp = self.typed.signatures[name]
        if sp.is_function:
            raise TypeError_(f"'{name}' is not a procedure")
        env = self._invoke(sp, list(args))
        return {p.name: env[p.name] for p in sp.params if p.mode != "in"}

    # -- machinery ------------------------------------------------------------

    def _step(self, cost: int = 1):
        self.steps += cost
        if self.steps > self.step_limit:
            raise StepLimitExceeded(
                f"interpreter exceeded {self.step_limit} steps")

    def _invoke(self, sp: ast.Subprogram, arg_values: List) -> Dict:
        if len(arg_values) != len(sp.params):
            raise TypeError_(f"{sp.name}: expected {len(sp.params)} arguments")
        ctx = self._ctx_cache.get(sp.name)
        if ctx is None:
            ctx = self.typed.context(sp.name).runtime_view()
            self._ctx_cache[sp.name] = ctx
        env: Dict[str, object] = {}
        for p, value in zip(sp.params, arg_values):
            if p.mode == "out":
                env[p.name] = make_default_value(ctx.var_type(p.name))
            else:
                env[p.name] = deep_copy_value(value)
                self._range_check(ctx.var_type(p.name), env[p.name], p.name)
        for d in sp.decls:
            t = ctx.var_type(d.name)
            if d.init is not None:
                env[d.name] = self._eval_in_type(d.init, env, ctx, t)
                self._range_check(t, env[d.name], d.name)
            else:
                env[d.name] = make_default_value(t)
        try:
            self._exec_block(sp.body, env, ctx)
            if sp.is_function:
                raise RuntimeFault(f"function {sp.name} fell off the end")
        except _ReturnSignal as ret:
            if sp.is_function:
                env["Result"] = ret.value
        return env

    # -- statements -----------------------------------------------------------

    def _exec_block(self, stmts, env, ctx):
        for stmt in stmts:
            self._exec(stmt, env, ctx)

    def _exec(self, stmt: ast.Stmt, env, ctx):
        self._step()
        if isinstance(stmt, ast.Assign):
            t = ctx.infer(stmt.target)
            value = self._eval_in_type(stmt.value, env, ctx, t)
            if isinstance(value, list):
                # Value semantics: `A := B;` must not alias B's storage.
                value = deep_copy_value(value)
            self._range_check(t, value, ast_target_name(stmt.target))
            self._store(stmt.target, value, env, ctx)
            return
        if isinstance(stmt, ast.If):
            for cond, body in stmt.branches:
                if self._eval(cond, env, ctx):
                    self._exec_block(body, env, ctx)
                    return
            self._exec_block(stmt.else_body, env, ctx)
            return
        if isinstance(stmt, ast.For):
            lo = self._eval(stmt.lo, env, ctx)
            hi = self._eval(stmt.hi, env, ctx)
            indices = range(hi, lo - 1, -1) if stmt.reverse else range(lo, hi + 1)
            shadow = env.get(stmt.var, _MISSING)
            ctx.push_loop_var(stmt.var)
            try:
                for i in indices:
                    env[stmt.var] = i
                    self._exec_block(stmt.body, env, ctx)
            finally:
                ctx.pop_loop_var()
            if shadow is _MISSING:
                env.pop(stmt.var, None)
            else:
                env[stmt.var] = shadow
            return
        if isinstance(stmt, ast.While):
            while self._eval(stmt.cond, env, ctx):
                self._exec_block(stmt.body, env, ctx)
                self._step()
            return
        if isinstance(stmt, ast.ProcCall):
            self._exec_call(stmt, env, ctx)
            return
        if isinstance(stmt, ast.Return):
            value = None
            if stmt.value is not None:
                sp = ctx.subprogram
                rt = self.typed.type_named(sp.return_type)
                value = self._eval_in_type(stmt.value, env, ctx, rt)
                self._range_check(rt, value, "Result")
            raise _ReturnSignal(value)
        if isinstance(stmt, ast.Null):
            return
        if isinstance(stmt, ast.Assert):
            if self.check_asserts:
                if not self._eval(stmt.expr, env, ctx):
                    raise RuntimeFault(
                        f"assertion failed in {ctx.subprogram.name}")
            return
        raise TypeError_(f"cannot execute {type(stmt).__name__}")

    def _exec_call(self, stmt: ast.ProcCall, env, ctx):
        callee = self.typed.signatures[stmt.name]
        values = []
        for arg, param in zip(stmt.args, callee.params):
            if param.mode == "out":
                values.append(None)  # placeholder; callee allocates
            else:
                values.append(self._eval(arg, env, ctx))
        callee_env = self._invoke(callee, values)
        for arg, param in zip(stmt.args, callee.params):
            if param.mode != "in":
                self._store(arg, callee_env[param.name], env, ctx)

    def _store(self, target: ast.Expr, value, env, ctx):
        if isinstance(target, ast.Name):
            env[target.id] = value
            return
        if isinstance(target, ast.ArrayRef):
            container, slot = self._locate(target, env, ctx)
            container[slot] = value
            return
        raise TypeError_("bad assignment target")

    def _locate(self, ref: ast.ArrayRef, env, ctx):
        """Return (python list, index offset) for an array component."""
        base_t = ctx.infer(ref.base)
        idx = self._eval(ref.index, env, ctx)
        if not (base_t.lo <= idx <= base_t.hi):
            raise RuntimeFault(
                f"index {idx} out of range {base_t.lo} .. {base_t.hi} "
                f"in {ctx.subprogram.name}")
        offset = idx - base_t.lo
        if isinstance(ref.base, ast.Name):
            if ref.base.id in env:
                arr = env[ref.base.id]
            elif ref.base.id in self.typed.constants:
                # Constant tables are stored as tuples: indexable, immutable
                # (the type checker rejects writes to constants).
                arr = self.typed.constants[ref.base.id][1]
            else:
                arr = None
            if arr is None:
                raise RuntimeFault(f"use of uninitialized array '{ref.base.id}'")
            return arr, offset
        if isinstance(ref.base, ast.ArrayRef):
            container, slot = self._locate(ref.base, env, ctx)
            inner = container[slot]
            if inner is None:
                raise RuntimeFault("use of uninitialized array component")
            return inner, offset
        raise TypeError_("bad array reference base")

    # -- expressions -----------------------------------------------------------

    def _typeof(self, expr: ast.Expr, ctx) -> Type:
        key = (ctx.subprogram.name, id(expr))
        hit = self._type_cache.get(key)
        if hit is None:
            hit = ctx.infer(expr)
            self._type_cache[key] = hit
        return hit

    def _eval_in_type(self, expr: ast.Expr, env, ctx, want: Type):
        if isinstance(expr, ast.Aggregate):
            if not isinstance(want, ArrayType):
                raise TypeError_("aggregate outside array context")
            items = [self._eval_in_type(e, env, ctx, want.elem)
                     for e in expr.items]
            if expr.others is not None:
                fill = self._eval_in_type(expr.others, env, ctx, want.elem)
                items.extend(deep_copy_value(fill)
                             for _ in range(want.length - len(items)))
            if len(items) != want.length:
                raise RuntimeFault(
                    f"aggregate length {len(items)} /= {want.length}")
            return items
        return self._eval(expr, env, ctx)

    def _eval(self, expr: ast.Expr, env, ctx):
        self._step()
        if isinstance(expr, ast.IntLit):
            return expr.value
        if isinstance(expr, ast.BoolLit):
            return expr.value
        if isinstance(expr, ast.Name):
            if expr.id in env:
                value = env[expr.id]
            elif expr.id in self.typed.constants:
                ctype, cval = self.typed.constants[expr.id]
                value = list(cval) if isinstance(cval, tuple) else cval
            else:
                raise TypeError_(f"unknown name '{expr.id}'")
            if value is None:
                raise RuntimeFault(f"use of uninitialized variable '{expr.id}' "
                                   f"in {ctx.subprogram.name}")
            return value
        if isinstance(expr, ast.ArrayRef):
            container, slot = self._locate(expr, env, ctx)
            value = container[slot]
            if value is None:
                raise RuntimeFault("use of uninitialized array component "
                                   f"in {ctx.subprogram.name}")
            return value
        if isinstance(expr, ast.FuncCall):
            return self._eval_funcall(expr, env, ctx)
        if isinstance(expr, ast.Conversion):
            value = self._eval(expr.operand, env, ctx)
            target = self.typed.type_named(expr.type_name)
            if isinstance(target, ModularType):
                if not (0 <= value < target.modulus):
                    raise RuntimeFault(
                        f"conversion of {value} to {expr.type_name} out of "
                        f"range in {ctx.subprogram.name}")
            elif isinstance(target, RangeType):
                if not (target.lo <= value <= target.hi):
                    raise RuntimeFault(
                        f"conversion of {value} to {expr.type_name} out of "
                        f"range in {ctx.subprogram.name}")
            return value
        if isinstance(expr, ast.UnOp):
            operand = self._eval(expr.operand, env, ctx)
            t = self._typeof(expr, ctx)
            if expr.op == "not":
                if isinstance(t, ModularType):
                    return operand ^ (t.modulus - 1)
                return not operand
            if expr.op == "-":
                if isinstance(t, ModularType):
                    return (-operand) % t.modulus
                return -operand
        if isinstance(expr, ast.BinOp):
            return self._eval_binop(expr, env, ctx)
        if isinstance(expr, ast.ForAll):
            lo = self._eval(expr.lo, env, ctx)
            hi = self._eval(expr.hi, env, ctx)
            shadow = env.get(expr.var, _MISSING)
            ctx.push_loop_var(expr.var)
            try:
                for i in range(lo, hi + 1):
                    env[expr.var] = i
                    if not self._eval(expr.body, env, ctx):
                        return False
                return True
            finally:
                ctx.pop_loop_var()
                if shadow is _MISSING:
                    env.pop(expr.var, None)
                else:
                    env[expr.var] = shadow
        if isinstance(expr, ast.OldExpr):
            raise TypeError_("'~' (old value) cannot be evaluated dynamically")
        raise TypeError_(f"cannot evaluate {type(expr).__name__}")

    def _eval_funcall(self, expr: ast.FuncCall, env, ctx):
        if expr.name in ("Shift_Left", "Shift_Right"):
            value = self._eval(expr.args[0], env, ctx)
            amount = self._eval(expr.args[1], env, ctx)
            t = self._typeof(expr, ctx)
            if expr.name == "Shift_Left":
                return (value << amount) % t.modulus
            return value >> amount
        if expr.name in self.typed.proof_functions:
            raise RuntimeFault(
                f"proof function {expr.name} has no executable body")
        args = [self._eval(a, env, ctx) for a in expr.args]
        return self.call_function(expr.name, args)

    def _eval_binop(self, expr: ast.BinOp, env, ctx):
        op = expr.op
        if op == "and_then":
            return bool(self._eval(expr.left, env, ctx)) and \
                bool(self._eval(expr.right, env, ctx))
        if op == "or_else":
            return bool(self._eval(expr.left, env, ctx)) or \
                bool(self._eval(expr.right, env, ctx))
        left = self._eval(expr.left, env, ctx)
        right = self._eval(expr.right, env, ctx)
        if op == "=":
            return left == right
        if op == "/=":
            return left != right
        if op == "<":
            return left < right
        if op == "<=":
            return left <= right
        if op == ">":
            return left > right
        if op == ">=":
            return left >= right
        t = self._typeof(expr, ctx)
        modulus = t.modulus if isinstance(t, ModularType) else None
        if op == "+":
            result = left + right
            return result % modulus if modulus else result
        if op == "-":
            result = left - right
            return result % modulus if modulus else result
        if op == "*":
            result = left * right
            return result % modulus if modulus else result
        if op == "/":
            if right == 0:
                raise RuntimeFault(f"division by zero in {ctx.subprogram.name}")
            result = abs(left) // abs(right)
            if (left < 0) != (right < 0):
                result = -result
            return result % modulus if modulus else result
        if op == "mod":
            if right == 0:
                raise RuntimeFault(f"mod by zero in {ctx.subprogram.name}")
            return left % right  # Ada mod: sign of the right operand
        if op in ("and", "or", "xor"):
            if isinstance(t, BooleanType):
                if op == "and":
                    return bool(left) and bool(right)
                if op == "or":
                    return bool(left) or bool(right)
                return bool(left) != bool(right)
            if op == "and":
                return left & right
            if op == "or":
                return left | right
            return left ^ right
        raise TypeError_(f"unknown operator {op}")

    def _range_check(self, t: Type, value, name: str):
        if value is None:
            return
        if isinstance(t, RangeType):
            if not (t.lo <= value <= t.hi):
                raise RuntimeFault(
                    f"value {value} of '{name}' outside {t.lo} .. {t.hi}")
        elif isinstance(t, ModularType):
            if not (0 <= value < t.modulus):
                raise RuntimeFault(
                    f"value {value} of '{name}' outside mod {t.modulus}")


class _Missing:
    pass


_MISSING = _Missing()


def ast_target_name(target: ast.Expr) -> str:
    while isinstance(target, ast.ArrayRef):
        target = target.base
    return target.id if isinstance(target, ast.Name) else "?"
