"""Type model for MiniAda.

MiniAda's types mirror the SPARK Ada subset the paper's AES code uses:
unbounded ``Integer`` with range subtypes, modular (wrap-around) types for
bytes and 32-bit words, and constrained one-dimensional arrays (arrays of
arrays give the 4x4 AES state).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

__all__ = [
    "Type", "IntegerType", "BooleanType", "ModularType", "RangeType",
    "ArrayType", "UniversalInt", "INTEGER", "BOOLEAN", "UNIV_INT",
    "is_integerish", "compatible",
]


@dataclass(frozen=True)
class Type:
    name: str


@dataclass(frozen=True)
class IntegerType(Type):
    pass


@dataclass(frozen=True)
class BooleanType(Type):
    pass


@dataclass(frozen=True)
class UniversalInt(Type):
    """The type of integer literals, compatible with every integer type."""


@dataclass(frozen=True)
class ModularType(Type):
    modulus: int = 0

    @property
    def width(self) -> int:
        """Bit width (the modulus is a power of two for all MiniAda uses)."""
        return (self.modulus - 1).bit_length()


@dataclass(frozen=True)
class RangeType(Type):
    lo: int = 0
    hi: int = 0


@dataclass(frozen=True)
class ArrayType(Type):
    lo: int = 0
    hi: int = 0
    elem: Optional[Type] = None

    @property
    def length(self) -> int:
        return self.hi - self.lo + 1


INTEGER = IntegerType("Integer")
BOOLEAN = BooleanType("Boolean")
UNIV_INT = UniversalInt("universal_integer")


def is_integerish(t: Type) -> bool:
    return isinstance(t, (IntegerType, RangeType, ModularType, UniversalInt))


def compatible(expected: Type, actual: Type) -> bool:
    """May a value of ``actual`` be used where ``expected`` is required?

    Follows Ada's model: integer subtypes (ranges) of Integer are freely
    interchangeable (run-time constraint checks guard the ranges -- those
    become verification conditions); modular types are distinct from each
    other and from Integer; literals are universal.
    """
    if expected == actual:
        return True
    if isinstance(actual, UniversalInt):
        return is_integerish(expected)
    if isinstance(expected, UniversalInt):
        return is_integerish(actual)
    int_family = (IntegerType, RangeType)
    if isinstance(expected, int_family) and isinstance(actual, int_family):
        return True
    if isinstance(expected, ModularType) and isinstance(actual, ModularType):
        return expected.name == actual.name
    if isinstance(expected, ArrayType) and isinstance(actual, ArrayType):
        return (expected.lo == actual.lo and expected.hi == actual.hi
                and expected.elem is not None and actual.elem is not None
                and compatible(expected.elem, actual.elem))
    return False
