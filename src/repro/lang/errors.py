"""Error types for the MiniAda front end and interpreter."""

from __future__ import annotations

__all__ = [
    "MiniAdaError", "LexError", "ParseError", "TypeError_", "RuntimeFault",
    "ConstraintError", "StepLimitExceeded",
]


class MiniAdaError(Exception):
    """Base class; carries an optional source line number."""

    def __init__(self, message: str, line: int = None):
        self.line = line
        if line is not None:
            message = f"line {line}: {message}"
        super().__init__(message)


class LexError(MiniAdaError):
    pass


class ParseError(MiniAdaError):
    pass


class TypeError_(MiniAdaError):
    """Static semantic error (named with a trailing underscore to avoid
    shadowing the builtin)."""


class RuntimeFault(MiniAdaError):
    """A run-time check failed during interpretation (index out of bounds,
    division by zero).  These are exactly the faults SPARK's exception-freedom
    VCs guard against, so the defect experiment treats them as observable."""


class ConstraintError(RuntimeFault):
    """Value assigned outside its subtype range."""


class StepLimitExceeded(MiniAdaError):
    """The interpreter exceeded its step budget (non-termination guard;
    Echo's definition of refactoring assumes the source program terminates)."""
