"""Token definitions for MiniAda."""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["Token", "KEYWORDS", "ANNOTATION_KEYWORDS", "SYMBOLS"]

#: Reserved words (lower-cased; MiniAda, like Ada, is case-insensitive for
#: keywords and identifiers).
KEYWORDS = frozenset(
    """package is end type subtype mod range array of constant function
    procedure return in out begin if then elsif else loop for while reverse
    and or xor not null others true false all""".split()
)

#: Words allowed after ``--#`` introducing an annotation.
ANNOTATION_KEYWORDS = frozenset(["pre", "post", "assert", "function", "rule"])

#: Multi-character symbols first so the lexer can do maximal munch.
SYMBOLS = [
    ":=", "..", "=>", "/=", "<=", ">=",
    "(", ")", ",", ";", ":", "=", "<", ">", "+", "-", "*", "/", "&", "~", "'",
]


@dataclass(frozen=True)
class Token:
    """One lexical token.

    ``kind`` is one of: ``id``, ``int``, ``sym``, ``kw``, ``annot`` (the
    ``--#`` introducer), ``eof``.  ``value`` holds the normalized payload
    (lower-case identifier text, integer value, symbol text).
    """

    kind: str
    value: object
    line: int

    def matches(self, kind: str, value=None) -> bool:
        return self.kind == kind and (value is None or self.value == value)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Token({self.kind}, {self.value!r}, line={self.line})"
