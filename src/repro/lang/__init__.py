"""MiniAda: the SPARK-Ada-subset substrate (lexer, parser, type checker,
interpreter, printer, annotations).

A MiniAda compilation unit is a single package with type/constant
declarations, SPARK-style ``--#`` annotations, and subprogram bodies.  See
DESIGN.md section 2 for why this substitutes for SPARK Ada in the
reproduction.
"""

from . import ast
from .annotations import (
    AnnotationCounts, count_annotations, strip_annotations,
    with_true_postconditions,
)
from .errors import (
    ConstraintError, LexError, MiniAdaError, ParseError, RuntimeFault,
    StepLimitExceeded, TypeError_,
)
from .interp import Interpreter
from .lexer import tokenize
from .parser import parse_expression, parse_package
from .printer import print_expr, print_package, print_stmt, print_subprogram
from .typecheck import SubprogramContext, TypedPackage, analyze
from .types import (
    ArrayType, BOOLEAN, BooleanType, INTEGER, IntegerType, ModularType,
    RangeType, Type, UNIV_INT, compatible, is_integerish,
)

__all__ = [
    "ast", "tokenize", "parse_package", "parse_expression", "analyze",
    "TypedPackage", "SubprogramContext", "Interpreter",
    "print_package", "print_subprogram", "print_stmt", "print_expr",
    "AnnotationCounts", "count_annotations", "strip_annotations",
    "with_true_postconditions",
    "MiniAdaError", "LexError", "ParseError", "TypeError_", "RuntimeFault",
    "ConstraintError", "StepLimitExceeded",
    "Type", "IntegerType", "BooleanType", "ModularType", "RangeType",
    "ArrayType", "INTEGER", "BOOLEAN", "UNIV_INT", "compatible",
    "is_integerish",
]
