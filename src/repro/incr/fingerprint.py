"""Edit-aware cone fingerprints over a typed MiniAda package.

A subprogram's proof outcome depends on more than its own text: the
simplifier's :class:`~repro.vcgen.simplifier.TypeBoundHook` reads every
declared type range, constant, and subprogram signature, and the prover
instantiates proof rules and the contracts of referenced subprograms.
The *cone fingerprint* built here is therefore deliberately
conservative -- a Merkle-style SHA-256 over

* the **package context**: every declaration (types, constants, proof
  functions, proof rules) plus the signature line of every subprogram
  (the type-bound hook reads return types package-wide), and
* the **reference closure**: the printed text (header, annotations,
  body) of the subprogram and of every subprogram it transitively
  references by name.

Conservative is the operative word: a changed cone forces a re-check
even when the change could not actually alter the verdict (soundness is
free, precision costs only re-proving), while an unchanged cone
guarantees the previous run's verdicts still apply.  Like
:func:`~repro.exec.cache.package_fingerprint`, the per-package result is
memoized on the typed object -- packages are immutable after analysis.
"""

from __future__ import annotations

import hashlib
import re
from typing import Dict, FrozenSet

from ..lang.printer import print_subprogram
from ..lang.typecheck import TypedPackage

__all__ = [
    "package_context_fingerprint", "subprogram_fingerprints",
    "reference_closure", "cone_fingerprints",
]

_IDENT_RE = re.compile(r"[A-Za-z][A-Za-z0-9_]*")


def _sha(text: str) -> str:
    return hashlib.sha256(text.encode()).hexdigest()


def _subprogram_text(sp) -> str:
    return "\n".join(print_subprogram(sp))


def _signature_line(sp) -> str:
    """The header of a subprogram's printed form: name, parameter modes
    and types, return type -- everything the package-wide type-bound
    hook can observe without looking at the body."""
    return _subprogram_text(sp).splitlines()[0]


def package_context_fingerprint(typed: TypedPackage) -> str:
    """Digest of everything *outside* subprogram bodies that can shape a
    discharge: the printed declarations and every subprogram's signature
    line."""
    from ..lang.printer import print_package
    import dataclasses
    pkg = typed.package
    decls_only = print_package(dataclasses.replace(pkg, subprograms=()))
    headers = "\n".join(_signature_line(sp) for sp in pkg.subprograms)
    return _sha(decls_only + "\x1f" + headers)


def subprogram_fingerprints(typed: TypedPackage) -> Dict[str, str]:
    """name -> digest of the subprogram's full printed text (header,
    ``--#`` annotations, body)."""
    return {sp.name: _sha(_subprogram_text(sp))
            for sp in typed.package.subprograms}


def reference_closure(typed: TypedPackage) -> Dict[str, FrozenSet[str]]:
    """name -> the set of subprogram names its text transitively
    references (always including itself).

    References are found by scanning the printed text for identifiers
    that coincide with subprogram names -- an over-approximation (a
    comment or shadowing local would count), which errs exactly the safe
    way: a spurious edge only widens the cone.
    """
    names = {sp.name for sp in typed.package.subprograms}
    direct: Dict[str, FrozenSet[str]] = {}
    for sp in typed.package.subprograms:
        tokens = set(_IDENT_RE.findall(_subprogram_text(sp)))
        direct[sp.name] = frozenset(tokens & names) | {sp.name}
    closure: Dict[str, FrozenSet[str]] = {}
    for name in direct:
        seen = set()
        stack = [name]
        while stack:
            current = stack.pop()
            if current in seen:
                continue
            seen.add(current)
            stack.extend(direct.get(current, ()))
        closure[name] = frozenset(seen)
    return closure


def cone_fingerprints(typed: TypedPackage) -> Dict[str, str]:
    """name -> the cone fingerprint: SHA-256 over the package context
    digest plus the sorted ``(name, text-digest)`` pairs of the
    subprogram's reference closure.  Memoized on the typed object."""
    cached = getattr(typed, "_incr_cones", None)
    if cached is not None:
        return cached
    context = package_context_fingerprint(typed)
    texts = subprogram_fingerprints(typed)
    closure = reference_closure(typed)
    cones = {}
    for name, members in closure.items():
        parts = [context]
        for member in sorted(members):
            parts.append(member)
            parts.append(texts[member])
        cones[name] = _sha("\x1f".join(parts))
    try:
        typed._incr_cones = cones
    except AttributeError:   # __slots__-restricted object: recompute
        pass
    return cones
