"""The replay-vs-recheck decision (DESIGN.md §15).

Given the previous run's manifest and the (possibly edited) typed
package, :func:`plan_incremental` decides, per requested subprogram:

* **replay** -- the manifest has an entry whose ``cone_fp`` matches the
  current cone fingerprint *and* every one of its scheduler-bound VC
  verdicts is still present in the :class:`~repro.exec.ResultCache`
  under its recorded key.  The subprogram skips examination entirely:
  its analysis scalars and verdicts are reconstructed from the manifest
  and the cache.
* **recheck** -- anything else: no manifest entry (new subprogram), a
  changed cone (the edit, or anything it transitively touches), or any
  evicted cache entry.  The subprogram runs the ordinary
  examine-then-schedule path.  The decision is all-or-nothing per
  subprogram -- a single missing verdict re-examines the whole
  subprogram, because partial replay would need the examiner anyway.

Cache probing happens *before* committing to replay, so a torn manifest
or an evicted entry can only ever cost a re-proof, never produce a
wrong or missing verdict.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..exec.obligation import _decode_vc_result
from ..lang.typecheck import TypedPackage
from ..vcgen.examiner import SubprogramAnalysis, VCRecord
from .fingerprint import cone_fingerprints

__all__ = ["IncrementalStats", "ReplayedSubprogram", "plan_incremental"]


@dataclass
class IncrementalStats:
    """What the incremental planner did, for telemetry and reports."""

    replayed_vcs: int = 0          # verdicts served from the manifest
    rechecked_vcs: int = 0         # VCs through examine + discharge
    manifest_miss: int = 0         # 1: no usable manifest (cold run)
    replayed_subprograms: int = 0
    rechecked_subprograms: int = 0
    #: Subprograms whose cone matched but fell back to a re-check
    #: because at least one recorded verdict was gone from the cache.
    evicted_fallbacks: int = 0

    def to_json(self) -> dict:
        return {
            "incr_replayed": self.replayed_vcs,
            "incr_rechecked": self.rechecked_vcs,
            "incr_manifest_miss": self.manifest_miss,
            "incr_replayed_subprograms": self.replayed_subprograms,
            "incr_rechecked_subprograms": self.rechecked_subprograms,
            "incr_evicted_fallbacks": self.evicted_fallbacks,
        }


@dataclass
class ReplayedSubprogram:
    """One subprogram reconstructed without examination.  ``outcomes``
    are :class:`~repro.prover.session.VCOutcome` instances carrying the
    same stage/result pairs a cold run would have produced."""

    analysis: SubprogramAnalysis
    outcomes: List[object] = field(default_factory=list)


def _replay_one(entry: dict, name: str, cache) -> \
        Optional[Tuple[SubprogramAnalysis, List[object], bool]]:
    """Reconstruct one subprogram from its manifest entry, or ``None``
    (with ``evicted=True`` in the third slot distinguished by the
    caller) when any recorded verdict is no longer cached."""
    from ..prover.session import VCOutcome   # import cycle: session->plan
    probed = []
    for row in entry["vcs"]:
        if not isinstance(row, dict):
            return None
        if row.get("simplifier"):
            probed.append((row, "simplifier", None))
            continue
        key = row.get("cache_key")
        if not isinstance(key, str) or cache is None:
            return None
        hit, value = cache.get(key, decode=_decode_vc_result)
        if not hit:
            return None
        stage, result = value
        probed.append((row, stage, result))
    analysis = SubprogramAnalysis(
        name=name, feasible=True,
        generated_bytes=int(entry.get("generated_bytes", 0)),
        simplified_bytes=int(entry.get("simplified_bytes", 0)),
        work_units=int(entry.get("work_units", 0)),
        fixpoint_exhausted=int(entry.get("fixpoint_exhausted", 0)))
    outcomes = []
    for row, stage, result in probed:
        vc = VCRecord(
            name=row["name"], subprogram=name, kind=row["kind"],
            generated_bytes=int(row.get("generated_bytes", 0)),
            simplified_bytes=int(row.get("simplified_bytes", 0)),
            discharged_by_simplifier=bool(row.get("simplifier")),
            # Replayed VCs carry no term: the whole point is that the
            # examiner never ran.  Nothing downstream reads .simplified
            # for a replayed VC (verdicts and byte counts are recorded).
            simplified=None)
        analysis.vcs.append(vc)
        outcomes.append(VCOutcome(vc=vc, stage=stage, result=result))
    return analysis, outcomes, True


def plan_incremental(manifest: Optional[dict], typed: TypedPackage,
                     names: Sequence[str], cache
                     ) -> Tuple[Dict[str, ReplayedSubprogram],
                                IncrementalStats]:
    """Split ``names`` into replayable and re-checkable subprograms.

    ``manifest`` is the (already scope-validated) manifest dict or
    ``None``; ``cache`` the resolved :class:`~repro.exec.ResultCache`
    (or ``None`` when caching is disabled, which disables replay).
    Returns ``(replayed, stats)``; every name absent from ``replayed``
    must be re-examined.  ``stats.rechecked_vcs`` is left at zero --
    the session fills it in once the re-examined VCs are counted.
    """
    stats = IncrementalStats()
    replayed: Dict[str, ReplayedSubprogram] = {}
    if manifest is None:
        stats.manifest_miss = 1
        stats.rechecked_subprograms = len(names)
        return replayed, stats
    cones = cone_fingerprints(typed)
    entries = manifest["subprograms"]
    for name in names:
        entry = entries.get(name)
        if entry is None or entry.get("cone_fp") != cones.get(name):
            stats.rechecked_subprograms += 1
            continue
        try:
            rebuilt = _replay_one(entry, name, cache)
        except (KeyError, TypeError, ValueError):
            rebuilt = None   # malformed entry: degrade, never crash
        if rebuilt is None:
            stats.rechecked_subprograms += 1
            stats.evicted_fallbacks += 1
            continue
        analysis, outcomes, _ = rebuilt
        replayed[name] = ReplayedSubprogram(analysis=analysis,
                                            outcomes=outcomes)
        stats.replayed_subprograms += 1
        stats.replayed_vcs += len(outcomes)
    return replayed, stats
