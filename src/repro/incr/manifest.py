"""The run manifest: what the previous run proved, addressably.

One JSON file per package name under the store root
(``<root>/<package>.json``), published atomically
(:func:`~repro.exec.atomicio.atomic_write_json`) so a crashed writer can
never leave a half-manifest behind.  Schema ``repro-incr/v1``::

    {
      "schema": "repro-incr/v1",
      "package": "AES",
      "package_fp": "<sha256 of the printed package at save time>",
      "config_digest": "<sha256 over prover config + examiner limits>",
      "subprograms": {
        "<name>": {
          "cone_fp": "<sha256>",
          "generated_bytes": int, "simplified_bytes": int,
          "work_units": int, "fixpoint_exhausted": int,
          "vcs": [
            {"name": "...", "kind": "...",
             "generated_bytes": int, "simplified_bytes": int,
             "simplifier": bool,          # discharged by the simplifier
             "term_fp": "<Merkle fingerprint of the simplified term>",
             "cache_key": "<ResultCache key>" | null}
          ]
        }
      }
    }

``cache_key`` is the load-bearing field: VC cache keys embed the
*whole-package* fingerprint, so after any edit the re-derived keys all
change -- replay must use the key recorded when the verdict was stored.
``config_digest`` scopes the manifest the same way
``simplifier_rules_key`` scopes the normalization cache: a manifest
written under a different prover configuration (timeouts, scripts,
examiner limits) never validates.

Loading is defensive by construction: a missing, torn, truncated,
wrong-schema, wrong-package, or wrong-scope manifest returns ``None``
and the caller falls back to a full run.
"""

from __future__ import annotations

import hashlib
import json
import os
from pathlib import Path
from typing import Optional, Union

from ..exec.atomicio import atomic_write_json

__all__ = ["MANIFEST_SCHEMA", "run_config_digest", "ManifestStore",
           "coerce_manifest_store"]

MANIFEST_SCHEMA = "repro-incr/v1"


def run_config_digest(prover_config: str, limits=None) -> str:
    """Digest of the non-package inputs that shape a verdict: the
    session's prover configuration string (timeouts, interactive
    scripts) and the examiner resource limits.  The package itself is
    *not* in here -- package edits are what the per-subprogram cone
    diff detects."""
    from ..vcgen import ExaminerLimits
    limits = limits if limits is not None else ExaminerLimits()
    token = "\x1f".join([
        prover_config,
        f"tree={limits.max_tree_bytes}",
        f"wp={limits.max_wp_statements}",
    ])
    return hashlib.sha256(token.encode()).hexdigest()


class ManifestStore:
    """Atomic load/save of run manifests under one directory."""

    def __init__(self, root: Union[str, os.PathLike]):
        self.root = Path(root)

    def path_for(self, package_name: str) -> Path:
        return self.root / f"{package_name}.json"

    def load(self, package_name: str,
             config_digest: str) -> Optional[dict]:
        """The manifest for ``package_name`` under ``config_digest``, or
        ``None`` for *any* defect: absent file, unparseable JSON (torn or
        truncated write by a non-atomic foreign writer), wrong schema,
        wrong package, a different configuration scope, or a structurally
        malformed subprogram table.  ``None`` always means "run cold"."""
        path = self.path_for(package_name)
        try:
            data = json.loads(path.read_text())
        except (OSError, ValueError):
            return None
        if not isinstance(data, dict):
            return None
        if data.get("schema") != MANIFEST_SCHEMA:
            return None
        if data.get("package") != package_name:
            return None
        if data.get("config_digest") != config_digest:
            return None
        subprograms = data.get("subprograms")
        if not isinstance(subprograms, dict):
            return None
        for entry in subprograms.values():
            if not isinstance(entry, dict) or \
                    not isinstance(entry.get("cone_fp"), str) or \
                    not isinstance(entry.get("vcs"), list):
                return None
        return data

    def save(self, package_name: str, package_fp: str, config_digest: str,
             subprograms: dict) -> Path:
        path = self.path_for(package_name)
        atomic_write_json(path, {
            "schema": MANIFEST_SCHEMA,
            "package": package_name,
            "package_fp": package_fp,
            "config_digest": config_digest,
            "subprograms": subprograms,
        })
        return path


def coerce_manifest_store(manifest) -> Optional[ManifestStore]:
    """``None`` | :class:`ManifestStore` | a directory path -> an
    optional store (the ``manifest=`` argument convention)."""
    if manifest is None or isinstance(manifest, ManifestStore):
        return manifest
    if isinstance(manifest, (str, os.PathLike)):
        return ManifestStore(manifest)
    raise TypeError(f"manifest must be a ManifestStore, a directory "
                    f"path, or None, got {type(manifest).__name__}")
