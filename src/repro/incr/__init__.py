"""Incremental re-verification (DESIGN.md §15).

After each implementation-proof run a **run manifest** is persisted:
per-subprogram *cone fingerprints* (Merkle digests over the subprogram's
declaration text plus everything its discharge can observe -- the package
declaration context and the transitive closure of referenced
subprograms) together with, per VC, the content-addressed
:class:`~repro.exec.ResultCache` key its verdict was stored under.  On
the next run the edited package's cones are diffed against the manifest:
subprograms whose cone is unchanged skip examination entirely and replay
their verdicts straight from the cache; only the changed cone is
re-examined and re-scheduled through the ordinary
:class:`~repro.exec.ObligationScheduler`.

The correctness stance is the repo's standard one: replay must be
*bit-identical* to a cold serial run, and every defensive path (missing,
torn, or stale manifest; a different prover-configuration scope; evicted
cache entries) degrades to a full re-run -- never to a wrong verdict.
"""

from .fingerprint import (
    cone_fingerprints, package_context_fingerprint, reference_closure,
    subprogram_fingerprints,
)
from .manifest import (
    MANIFEST_SCHEMA, ManifestStore, coerce_manifest_store,
    run_config_digest,
)
from .plan import IncrementalStats, ReplayedSubprogram, plan_incremental

__all__ = [
    "MANIFEST_SCHEMA", "ManifestStore", "coerce_manifest_store",
    "run_config_digest", "package_context_fingerprint",
    "subprogram_fingerprints", "reference_closure", "cone_fingerprints",
    "IncrementalStats", "ReplayedSubprogram", "plan_incremental",
]
