"""Interactive proof scripts for the AES implementation proof.

The paper: "The remaining VCs required quite straightforward manual
intervention, usually involving either the application of preconditions or
induction on loop invariants.  The interactive proof process for each
remaining VC was finished within a few minutes" (6.2.3).

Our equivalents are small tactic scripts.  The dominant family is a case
split over the column/word counter of a state-operation loop (the
"induction on loop invariants" step made concrete: each case of the
freshly-incremented counter is closed by congruence with the invariant).
"""

from __future__ import annotations

from typing import Dict, Sequence

from ..prover import CasesVar, ProofScript

__all__ = ["aes_proof_scripts"]


def aes_proof_scripts() -> Dict[str, Sequence[ProofScript]]:
    column_cases = ProofScript(
        name="cases-on-column-counter",
        tactics=(CasesVar("C", 0, 3),))
    word_cases = ProofScript(
        name="cases-on-word-counter",
        tactics=(CasesVar("I", 0, 15),))
    small_word_cases = ProofScript(
        name="cases-on-word-byte-counter",
        tactics=(CasesVar("I", 0, 3), CasesVar("J", 0, 3)))
    schedule_cases_128 = ProofScript(
        name="cases-on-schedule-counter-128",
        tactics=(CasesVar("I", 4, 43),))
    schedule_cases_192 = ProofScript(
        name="cases-on-schedule-counter-192",
        tactics=(CasesVar("I", 6, 51),))
    schedule_cases_256 = ProofScript(
        name="cases-on-schedule-counter-256",
        tactics=(CasesVar("I", 8, 59),))
    round_cases = ProofScript(
        name="cases-on-round-counter",
        tactics=(CasesVar("R", 0, 14),))

    scripts: Dict[str, Sequence[ProofScript]] = {
        "Mix_Columns": [column_cases],
        "Inv_Mix_Columns": [column_cases],
        "Sub_Bytes": [word_cases],
        "Inv_Sub_Bytes": [word_cases],
        "Shift_Rows": [word_cases],
        "Inv_Shift_Rows": [word_cases],
        "Add_Round_Key": [word_cases],
        "Rot_Word": [small_word_cases],
        "Sub_Word": [small_word_cases],
        "Xor_Words": [small_word_cases],
        "Rcon_Word": [small_word_cases],
        "Key_Schedule_128": [small_word_cases, schedule_cases_128],
        "Key_Schedule_192": [small_word_cases, schedule_cases_192],
        "Key_Schedule_256": [small_word_cases, schedule_cases_256],
        "Round_Key_128": [word_cases, round_cases],
        "Round_Key_192": [word_cases, round_cases],
        "Round_Key_256": [word_cases, round_cases],
    }
    for bits in (128, 192, 256):
        scripts[f"AES{bits}"] = [round_cases]
        scripts[f"Inv_AES{bits}"] = [round_cases]
    return scripts
