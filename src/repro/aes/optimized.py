"""The optimized AES implementation in MiniAda.

A faithful re-creation of the structure of Rijmen et al.'s
``rijndael-alg-fst.c`` (the artifact the paper verified): packed 32-bit
words, Te/Td T-tables combining SubBytes with MixColumns, fully unrolled
round bodies, per-key-size key-expansion branches, Te4/Td4 for final
rounds and key schedule, and the *equivalent inverse cipher* with the
InvMixColumns-adjusted decryption key schedule.

The source is generated (tables computed by :mod:`repro.aes.gf`), parsed
by the MiniAda front end, and validated against the FIPS-197 vectors.
One deliberate deviation from fst.c, documented in DESIGN.md: round
temporaries are copied back to the state variables each round instead of
alternating t/s names, so the unrolled rounds are textually affine in the
round number -- which is what makes the re-rolling transformation
*mechanically* applicable, exactly as the paper's block 1 requires.
"""

from __future__ import annotations

from functools import lru_cache
from typing import List

from ..lang import Interpreter, TypedPackage, analyze, parse_package
from . import gf
from .vectors import FIPS197_VECTORS

__all__ = ["optimized_source", "optimized_package", "run_cipher",
           "run_inv_cipher", "validate_optimized", "TYPE_DECLS",
           "word_table", "rcon_decl"]

TYPE_DECLS = """   type Byte is mod 256;
   type Word is mod 4294967296;
   subtype Key_Length is Integer range 4 .. 8;
   subtype Round_Count is Integer range 10 .. 14;
   type Byte_Block is array (0 .. 15) of Byte;
   type Key_Bytes is array (0 .. 31) of Byte;
   type Word_Key is array (0 .. 59) of Word;
   type Word_Table is array (0 .. 255) of Word;
   type Rcon_Table is array (0 .. 9) of Word;
"""


def word_table(name: str, values) -> str:
    entries = ", ".join(f"16#{v:08X}#" for v in values)
    return f"   {name} : constant Word_Table := ({entries});\n"


def rcon_decl() -> str:
    entries = ", ".join(f"16#{v:08X}#" for v in gf.rcon_words())
    return f"   Rcon : constant Rcon_Table := ({entries});\n"


def _pack_word(dest: str, source: str, base) -> str:
    """dest := bytes source[base..base+3] packed big-endian."""
    def idx(k):
        return f"{base} + {k}" if isinstance(base, str) else str(base + k)
    return (f"      {dest} := Shift_Left (Word ({source} ({idx(0)})), 24) or "
            f"Shift_Left (Word ({source} ({idx(1)})), 16) or "
            f"Shift_Left (Word ({source} ({idx(2)})), 8) or "
            f"Word ({source} ({idx(3)}));\n")


def _round_lookup(tables: str, col: int, decrypt: bool) -> str:
    """The four-table xor for one output word of a round.

    Encryption: t_c combines rows 0..3 of s_c, s_{c+1}, s_{c+2}, s_{c+3};
    decryption mirrors with s_{c-1}, s_{c-2}, s_{c-3} (mod 4)."""
    def src(row):
        if decrypt:
            return f"S{(col - row) % 4}"
        return f"S{(col + row) % 4}"
    return (f"{tables}0 (Integer (Shift_Right ({src(0)}, 24))) xor "
            f"{tables}1 (Integer (Shift_Right ({src(1)}, 16) and 255)) xor "
            f"{tables}2 (Integer (Shift_Right ({src(2)}, 8) and 255)) xor "
            f"{tables}3 (Integer ({src(3)} and 255))")


def _full_round(rk_base, tables: str, decrypt: bool) -> str:
    out = []
    for c in range(4):
        rk_index = f"{rk_base} + {c}" if isinstance(rk_base, str) \
            else str(rk_base + c)
        out.append(f"      T{c} := {_round_lookup(tables, c, decrypt)} "
                   f"xor RK ({rk_index});\n")
    for c in range(4):
        out.append(f"      S{c} := T{c};\n")
    return "".join(out)


def _final_round(tables4: str, decrypt: bool) -> str:
    masks = ["16#FF000000#", "16#00FF0000#", "16#0000FF00#", "16#000000FF#"]
    shifts = [("Shift_Right ({s}, 24)", None),
              ("Shift_Right ({s}, 16) and 255", None),
              ("Shift_Right ({s}, 8) and 255", None),
              ("{s} and 255", None)]
    out = []
    for c in range(4):
        parts = []
        for row in range(4):
            if decrypt:
                source = f"S{(c - row) % 4}"
            else:
                source = f"S{(c + row) % 4}"
            extract = shifts[row][0].format(s=source)
            parts.append(f"({tables4} (Integer ({extract})) and {masks[row]})")
        joined = " or ".join(parts)
        out.append(f"      T{c} := ({joined}) xor RK (4 * Nr + {c});\n")
    for c in range(4):
        base = 4 * c
        out.append(f"      Output ({base}) := Byte (Shift_Right (T{c}, 24));\n")
        out.append(f"      Output ({base + 1}) := "
                   f"Byte (Shift_Right (T{c}, 16) and 255);\n")
        out.append(f"      Output ({base + 2}) := "
                   f"Byte (Shift_Right (T{c}, 8) and 255);\n")
        out.append(f"      Output ({base + 3}) := Byte (T{c} and 255);\n")
    return "".join(out)


def _subword_mix(temp: str, rotated: bool) -> str:
    """Te4-based SubWord as used by the fst.c key schedule.

    ``rotated`` selects the RotWord+SubWord byte arrangement (used on the
    Nk-boundary words); otherwise plain SubWord (the Nk=8 middle case)."""
    if rotated:
        rows = [f"(Te4 (Integer (Shift_Right ({temp}, 16) and 255)) "
                f"and 16#FF000000#)",
                f"(Te4 (Integer (Shift_Right ({temp}, 8) and 255)) "
                f"and 16#00FF0000#)",
                f"(Te4 (Integer ({temp} and 255)) and 16#0000FF00#)",
                f"(Te4 (Integer (Shift_Right ({temp}, 24))) and 16#000000FF#)"]
    else:
        rows = [f"(Te4 (Integer (Shift_Right ({temp}, 24))) "
                f"and 16#FF000000#)",
                f"(Te4 (Integer (Shift_Right ({temp}, 16) and 255)) "
                f"and 16#00FF0000#)",
                f"(Te4 (Integer (Shift_Right ({temp}, 8) and 255)) "
                f"and 16#0000FF00#)",
                f"(Te4 (Integer ({temp} and 255)) and 16#000000FF#)"]
    return " xor ".join(rows)


def _expand_128() -> str:
    out = ["      Nr := 10;\n"]
    for i in range(10):
        base = 4 * i
        out.append(f"      T := RK ({base + 3});\n")
        out.append(f"      RK ({base + 4}) := RK ({base}) xor "
                   f"{_subword_mix('T', rotated=True)} xor Rcon ({i});\n")
        out.append(f"      RK ({base + 5}) := RK ({base + 4}) "
                   f"xor RK ({base + 1});\n")
        out.append(f"      RK ({base + 6}) := RK ({base + 5}) "
                   f"xor RK ({base + 2});\n")
        out.append(f"      RK ({base + 7}) := RK ({base + 6}) "
                   f"xor RK ({base + 3});\n")
    return "".join(out)


def _expand_192() -> str:
    out = ["      Nr := 12;\n"]
    for i in range(8):
        base = 6 * i
        out.append(f"      T := RK ({base + 5});\n")
        out.append(f"      RK ({base + 6}) := RK ({base}) xor "
                   f"{_subword_mix('T', rotated=True)} xor Rcon ({i});\n")
        for k in range(1, 6):
            if base + 6 + k > 53:
                break
            out.append(f"      RK ({base + 6 + k}) := RK ({base + 5 + k}) "
                       f"xor RK ({base + k});\n")
    return "".join(out)


def _expand_256() -> str:
    out = ["      Nr := 14;\n"]
    for i in range(7):
        base = 8 * i
        out.append(f"      T := RK ({base + 7});\n")
        out.append(f"      RK ({base + 8}) := RK ({base}) xor "
                   f"{_subword_mix('T', rotated=True)} xor Rcon ({i});\n")
        for k in range(1, 4):
            out.append(f"      RK ({base + 8 + k}) := RK ({base + 7 + k}) "
                       f"xor RK ({base + k});\n")
        if i == 6:
            break  # rk[60..] does not exist; 256-bit schedule ends at 59
        out.append(f"      T := RK ({base + 11});\n")
        out.append(f"      RK ({base + 12}) := RK ({base + 4}) xor "
                   f"{_subword_mix('T', rotated=False)};\n")
        for k in range(1, 4):
            out.append(f"      RK ({base + 12 + k}) := RK ({base + 11 + k}) "
                       f"xor RK ({base + 4 + k});\n")
    return "".join(out)


@lru_cache(maxsize=None)
def optimized_source() -> str:
    te = gf.te_tables()
    td = gf.td_tables()
    tables = "".join([
        word_table("Te0", te[0]), word_table("Te1", te[1]),
        word_table("Te2", te[2]), word_table("Te3", te[3]),
        word_table("Te4", gf.te4()),
        word_table("Td0", td[0]), word_table("Td1", td[1]),
        word_table("Td2", td[2]), word_table("Td3", td[3]),
        word_table("Td4", gf.td4()),
        rcon_decl(),
    ])

    # Encryption rounds: 9 unconditional, then Nr-dependent extras.
    enc_rounds = "".join(_full_round(4 * r, "Te", decrypt=False)
                         for r in range(1, 10))
    enc_extra_12 = "".join(_full_round(4 * r, "Te", decrypt=False)
                           for r in (10, 11))
    enc_extra_14 = "".join(_full_round(4 * r, "Te", decrypt=False)
                           for r in (12, 13))
    dec_rounds = "".join(_full_round(4 * r, "Td", decrypt=True)
                         for r in range(1, 10))
    dec_extra_12 = "".join(_full_round(4 * r, "Td", decrypt=True)
                           for r in (10, 11))
    dec_extra_14 = "".join(_full_round(4 * r, "Td", decrypt=True)
                           for r in (12, 13))

    pack_state = "".join(
        _pack_word(f"S{c}", "Input", 4 * c) for c in range(4))
    xor_initial = "".join(
        f"      S{c} := S{c} xor RK ({c});\n" for c in range(4))

    return f"""package AES_Impl is

{TYPE_DECLS}
{tables}
   procedure Expand_Key (Key : in Key_Bytes; Nk : in Key_Length;
                         RK : out Word_Key; Nr : out Round_Count) is
      T : Word;
   begin
      for I in 0 .. Nk - 1 loop
         RK (I) := Shift_Left (Word (Key (4 * I)), 24) or
                   Shift_Left (Word (Key (4 * I + 1)), 16) or
                   Shift_Left (Word (Key (4 * I + 2)), 8) or
                   Word (Key (4 * I + 3));
      end loop;
      if Nk = 4 then
{_expand_128()}      elsif Nk = 6 then
{_expand_192()}      else
{_expand_256()}      end if;
   end Expand_Key;

   procedure Expand_Dec_Key (Key : in Key_Bytes; Nk : in Key_Length;
                             RK : out Word_Key; Nr : out Round_Count) is
      A : Word;
      B : Word;
   begin
      Expand_Key (Key, Nk, RK, Nr);
      for C in 0 .. 3 loop
         for I in 0 .. 6 loop
            if I < Nr - I then
               A := RK (4 * I + C);
               B := RK (4 * (Nr - I) + C);
               RK (4 * I + C) := B;
               RK (4 * (Nr - I) + C) := A;
            end if;
         end loop;
      end loop;
      for I in 4 .. 4 * Nr - 1 loop
         A := RK (I);
         RK (I) := Td0 (Integer (Te4 (Integer (Shift_Right (A, 24))) and 255)) xor
                   Td1 (Integer (Te4 (Integer (Shift_Right (A, 16) and 255)) and 255)) xor
                   Td2 (Integer (Te4 (Integer (Shift_Right (A, 8) and 255)) and 255)) xor
                   Td3 (Integer (Te4 (Integer (A and 255)) and 255));
      end loop;
   end Expand_Dec_Key;

   procedure Encrypt (RK : in Word_Key; Nr : in Round_Count;
                      Input : in Byte_Block; Output : out Byte_Block) is
      S0 : Word;
      S1 : Word;
      S2 : Word;
      S3 : Word;
      T0 : Word;
      T1 : Word;
      T2 : Word;
      T3 : Word;
   begin
{pack_state}{xor_initial}{enc_rounds}      if Nr > 10 then
{enc_extra_12}      end if;
      if Nr > 12 then
{enc_extra_14}      end if;
{_final_round("Te4", decrypt=False)}   end Encrypt;

   procedure Decrypt (RK : in Word_Key; Nr : in Round_Count;
                      Input : in Byte_Block; Output : out Byte_Block) is
      S0 : Word;
      S1 : Word;
      S2 : Word;
      S3 : Word;
      T0 : Word;
      T1 : Word;
      T2 : Word;
      T3 : Word;
   begin
{pack_state}{xor_initial}{dec_rounds}      if Nr > 10 then
{dec_extra_12}      end if;
      if Nr > 12 then
{dec_extra_14}      end if;
{_final_round("Td4", decrypt=True)}   end Decrypt;

   procedure Cipher (Key : in Key_Bytes; Nk : in Key_Length;
                     Input : in Byte_Block; Output : out Byte_Block) is
      RK : Word_Key;
      Nr : Round_Count;
   begin
      Expand_Key (Key, Nk, RK, Nr);
      Encrypt (RK, Nr, Input, Output);
   end Cipher;

   procedure Inv_Cipher (Key : in Key_Bytes; Nk : in Key_Length;
                         Input : in Byte_Block; Output : out Byte_Block) is
      RK : Word_Key;
      Nr : Round_Count;
   begin
      Expand_Dec_Key (Key, Nk, RK, Nr);
      Decrypt (RK, Nr, Input, Output);
   end Inv_Cipher;

end AES_Impl;
"""


@lru_cache(maxsize=None)
def optimized_package() -> TypedPackage:
    return analyze(parse_package(optimized_source()))


def run_cipher(typed: TypedPackage, key, nk: int, block,
               decrypt: bool = False):
    interp = Interpreter(typed)
    padded = list(key) + [0] * (32 - len(key))
    name = "Inv_Cipher" if decrypt else "Cipher"
    out = interp.call_procedure(name, [padded, nk, list(block), None])
    return tuple(out["Output"])


def run_inv_cipher(typed: TypedPackage, key, nk: int, block):
    return run_cipher(typed, key, nk, block, decrypt=True)


def validate_optimized(typed: TypedPackage = None) -> bool:
    """Check the implementation against every FIPS-197 appendix C vector,
    both directions."""
    typed = typed or optimized_package()
    for vector in FIPS197_VECTORS:
        got = run_cipher(typed, vector.key, vector.nk, vector.plaintext)
        if got != vector.ciphertext:
            raise AssertionError(f"{vector.name}: encrypt mismatch {got}")
        back = run_inv_cipher(typed, vector.key, vector.nk,
                              vector.ciphertext)
        if back != vector.plaintext:
            raise AssertionError(f"{vector.name}: decrypt mismatch {back}")
    return True
