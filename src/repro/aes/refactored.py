"""The fully refactored AES implementation.

This is the program the 14 transformation blocks converge to: byte-level
state matching the FIPS-197 State, one function per specification element
(SubBytes/ShiftRows/MixColumns/AddRoundKey and inverses, RotWord/SubWord/
XorWords/RconWord, per-variant key schedules and ciphers), tables reduced
to the S-boxes, and the straightforward inverse cipher in place of the
optimized equivalent inverse.

The observable interface (``Cipher``/``Inv_Cipher``) is unchanged from the
optimized program, which is what the per-block semantics-preservation
theorems quantify over.
"""

from __future__ import annotations

from functools import lru_cache

from ..lang import Interpreter, TypedPackage, analyze, parse_package
from . import gf
from .vectors import FIPS197_VECTORS

__all__ = ["refactored_source", "refactored_package", "validate_refactored"]


def _byte_table(name: str, values) -> str:
    entries = ", ".join(str(v) for v in values)
    return f"   {name} : constant Byte_Table := ({entries});\n"


def _key_schedule(bits: int, nk: int, words: int) -> str:
    """Per-variant key schedule over Word_Bytes, mirroring FIPS 5.2."""
    schedule_type = f"Schedule{words}"
    key_type = f"Key{nk * 4}"
    extra = ""
    if nk == 8:
        extra = """         elsif I mod 8 = 4 then
            W (I) := Xor_Words (W (I - 8), Sub_Word (W (I - 1)));
"""
    return f"""   function Key_Schedule_{bits} (Key : in {key_type}) return {schedule_type}
   is
      W : {schedule_type};
   begin
      for I in 0 .. {nk - 1} loop
         for J in 0 .. 3 loop
            W (I) (J) := Key (4 * I + J);
         end loop;
      end loop;
      for I in {nk} .. {words - 1} loop
         if I mod {nk} = 0 then
            W (I) := Xor_Words (W (I - {nk}),
               Xor_Words (Sub_Word (Rot_Word (W (I - 1))),
                          Rcon_Word (I / {nk} - 1)));
{extra}         else
            W (I) := Xor_Words (W (I - {nk}), W (I - 1));
         end if;
      end loop;
      return W;
   end Key_Schedule_{bits};
"""


def _round_key(bits: int, nk: int, words: int, max_round: int) -> str:
    return f"""   function Round_Key_{bits} (Key : in Key{nk * 4}; R : in Integer) return State
   --# pre R >= 0 and R <= {max_round};
   is
      W : Schedule{words};
      K : State;
   begin
      W := Key_Schedule_{bits} (Key);
      for I in 0 .. 15 loop
         K (I) := W (4 * R + I / 4) (I mod 4);
      end loop;
      return K;
   end Round_Key_{bits};
"""


def _aes_variant(bits: int, nk: int, rounds: int) -> str:
    return f"""   function AES{bits} (Key : in Key{nk * 4}; Input : in State) return State
   is
      S : State;
   begin
      S := Add_Round_Key (Input, Round_Key_{bits} (Key, 0));
      for R in 1 .. {rounds - 1} loop
         S := Round (S, Round_Key_{bits} (Key, R));
      end loop;
      return Final_Round (S, Round_Key_{bits} (Key, {rounds}));
   end AES{bits};

   function Inv_AES{bits} (Key : in Key{nk * 4}; Input : in State) return State
   is
      S : State;
   begin
      S := Add_Round_Key (Input, Round_Key_{bits} (Key, {rounds}));
      for R in reverse 1 .. {rounds - 1} loop
         S := Inv_Round (S, Round_Key_{bits} (Key, R));
      end loop;
      return Inv_Final_Round (S, Round_Key_{bits} (Key, 0));
   end Inv_AES{bits};
"""


def _dispatch(name: str, fn_prefix: str) -> str:
    branches = []
    for nk, bits in ((4, 128), (6, 192), (8, 256)):
        size = nk * 4
        branches.append(f"""      {"if" if nk == 4 else "elsif"} Nk = {nk} then
         for I in 0 .. {size - 1} loop
            K{size} (I) := Key (I);
         end loop;
         Output := {fn_prefix}{bits} (K{size}, Input);""")
    joined = "\n".join(branches)
    return f"""   procedure {name} (Key : in Key_Bytes; Nk : in Key_Length;
                     Input : in State; Output : out State) is
      K16 : Key16;
      K24 : Key24;
      K32 : Key32;
   begin
{joined}
      end if;
   end {name};
"""


@lru_cache(maxsize=None)
def refactored_source() -> str:
    rcon_bytes = [w >> 24 for w in gf.rcon_words()]
    return f"""package AES_Impl is

   type Byte is mod 256;
   subtype Key_Length is Integer range 4 .. 8;
   type State is array (0 .. 15) of Byte;
   type Word_Bytes is array (0 .. 3) of Byte;
   type Key_Bytes is array (0 .. 31) of Byte;
   type Key16 is array (0 .. 15) of Byte;
   type Key24 is array (0 .. 23) of Byte;
   type Key32 is array (0 .. 31) of Byte;
   type Byte_Table is array (0 .. 255) of Byte;
   type Rcon_Bytes is array (0 .. 9) of Byte;
   type Schedule44 is array (0 .. 43) of Word_Bytes;
   type Schedule52 is array (0 .. 51) of Word_Bytes;
   type Schedule60 is array (0 .. 59) of Word_Bytes;

{_byte_table("Sbox", gf.sbox())}
{_byte_table("Inv_Sbox", gf.inv_sbox())}
   Rcon : constant Rcon_Bytes := ({", ".join(str(v) for v in rcon_bytes)});

   function X_Time (B : in Byte) return Byte
   is
   begin
      if B < 128 then
         return B + B;
      end if;
      return (B + B) xor 27;
   end X_Time;

   function GF_Mul2 (B : in Byte) return Byte
   is
   begin
      return X_Time (B);
   end GF_Mul2;

   function GF_Mul3 (B : in Byte) return Byte
   is
   begin
      return X_Time (B) xor B;
   end GF_Mul3;

   function GF_Mul9 (B : in Byte) return Byte
   is
   begin
      return X_Time (X_Time (X_Time (B))) xor B;
   end GF_Mul9;

   function GF_Mul11 (B : in Byte) return Byte
   is
   begin
      return X_Time (X_Time (X_Time (B))) xor (X_Time (B) xor B);
   end GF_Mul11;

   function GF_Mul13 (B : in Byte) return Byte
   is
   begin
      return X_Time (X_Time (X_Time (B))) xor (X_Time (X_Time (B)) xor B);
   end GF_Mul13;

   function GF_Mul14 (B : in Byte) return Byte
   is
   begin
      return X_Time (X_Time (X_Time (B))) xor
             (X_Time (X_Time (B)) xor X_Time (B));
   end GF_Mul14;

   function Sub_Bytes (S : in State) return State
   is
      R : State;
   begin
      for I in 0 .. 15 loop
         R (I) := Sbox (Integer (S (I)));
      end loop;
      return R;
   end Sub_Bytes;

   function Inv_Sub_Bytes (S : in State) return State
   is
      R : State;
   begin
      for I in 0 .. 15 loop
         R (I) := Inv_Sbox (Integer (S (I)));
      end loop;
      return R;
   end Inv_Sub_Bytes;

   function Shift_Rows (S : in State) return State
   is
      R : State;
   begin
      for I in 0 .. 15 loop
         R (I) := S (4 * ((I / 4 + I mod 4) mod 4) + I mod 4);
      end loop;
      return R;
   end Shift_Rows;

   function Inv_Shift_Rows (S : in State) return State
   is
      R : State;
   begin
      for I in 0 .. 15 loop
         R (I) := S (4 * ((I / 4 + 4 - I mod 4) mod 4) + I mod 4);
      end loop;
      return R;
   end Inv_Shift_Rows;

   function Mix_Columns (S : in State) return State
   is
      R : State;
   begin
      for C in 0 .. 3 loop
         R (4 * C) := GF_Mul2 (S (4 * C)) xor GF_Mul3 (S (4 * C + 1)) xor
                      (S (4 * C + 2) xor S (4 * C + 3));
         R (4 * C + 1) := S (4 * C) xor GF_Mul2 (S (4 * C + 1)) xor
                          (GF_Mul3 (S (4 * C + 2)) xor S (4 * C + 3));
         R (4 * C + 2) := S (4 * C) xor S (4 * C + 1) xor
                          (GF_Mul2 (S (4 * C + 2)) xor GF_Mul3 (S (4 * C + 3)));
         R (4 * C + 3) := GF_Mul3 (S (4 * C)) xor S (4 * C + 1) xor
                          (S (4 * C + 2) xor GF_Mul2 (S (4 * C + 3)));
      end loop;
      return R;
   end Mix_Columns;

   function Inv_Mix_Columns (S : in State) return State
   is
      R : State;
   begin
      for C in 0 .. 3 loop
         R (4 * C) := GF_Mul14 (S (4 * C)) xor GF_Mul11 (S (4 * C + 1)) xor
                      (GF_Mul13 (S (4 * C + 2)) xor GF_Mul9 (S (4 * C + 3)));
         R (4 * C + 1) := GF_Mul9 (S (4 * C)) xor GF_Mul14 (S (4 * C + 1)) xor
                          (GF_Mul11 (S (4 * C + 2)) xor GF_Mul13 (S (4 * C + 3)));
         R (4 * C + 2) := GF_Mul13 (S (4 * C)) xor GF_Mul9 (S (4 * C + 1)) xor
                          (GF_Mul14 (S (4 * C + 2)) xor GF_Mul11 (S (4 * C + 3)));
         R (4 * C + 3) := GF_Mul11 (S (4 * C)) xor GF_Mul13 (S (4 * C + 1)) xor
                          (GF_Mul9 (S (4 * C + 2)) xor GF_Mul14 (S (4 * C + 3)));
      end loop;
      return R;
   end Inv_Mix_Columns;

   function Add_Round_Key (S : in State; K : in State) return State
   is
      R : State;
   begin
      for I in 0 .. 15 loop
         R (I) := S (I) xor K (I);
      end loop;
      return R;
   end Add_Round_Key;

   function Round (S : in State; K : in State) return State
   is
   begin
      return Add_Round_Key (Mix_Columns (Shift_Rows (Sub_Bytes (S))), K);
   end Round;

   function Final_Round (S : in State; K : in State) return State
   is
   begin
      return Add_Round_Key (Shift_Rows (Sub_Bytes (S)), K);
   end Final_Round;

   function Inv_Round (S : in State; K : in State) return State
   is
   begin
      return Inv_Mix_Columns (Add_Round_Key (Inv_Shift_Rows (Inv_Sub_Bytes (S)), K));
   end Inv_Round;

   function Inv_Final_Round (S : in State; K : in State) return State
   is
   begin
      return Add_Round_Key (Inv_Shift_Rows (Inv_Sub_Bytes (S)), K);
   end Inv_Final_Round;

   function Rot_Word (W : in Word_Bytes) return Word_Bytes
   is
      R : Word_Bytes;
   begin
      for I in 0 .. 3 loop
         R (I) := W ((I + 1) mod 4);
      end loop;
      return R;
   end Rot_Word;

   function Sub_Word (W : in Word_Bytes) return Word_Bytes
   is
      R : Word_Bytes;
   begin
      for I in 0 .. 3 loop
         R (I) := Sbox (Integer (W (I)));
      end loop;
      return R;
   end Sub_Word;

   function Xor_Words (A : in Word_Bytes; B : in Word_Bytes) return Word_Bytes
   is
      R : Word_Bytes;
   begin
      for I in 0 .. 3 loop
         R (I) := A (I) xor B (I);
      end loop;
      return R;
   end Xor_Words;

   function Rcon_Word (R : in Integer) return Word_Bytes
   --# pre R >= 0 and R <= 9;
   is
      W : Word_Bytes;
   begin
      W (0) := Rcon (R);
      for I in 1 .. 3 loop
         W (I) := 0;
      end loop;
      return W;
   end Rcon_Word;

{_key_schedule(128, 4, 44)}
{_key_schedule(192, 6, 52)}
{_key_schedule(256, 8, 60)}
{_round_key(128, 4, 44, 10)}
{_round_key(192, 6, 52, 12)}
{_round_key(256, 8, 60, 14)}
{_aes_variant(128, 4, 10)}
{_aes_variant(192, 6, 12)}
{_aes_variant(256, 8, 14)}
{_dispatch("Cipher", "AES")}
{_dispatch("Inv_Cipher", "Inv_AES")}
end AES_Impl;
"""


@lru_cache(maxsize=None)
def refactored_package() -> TypedPackage:
    return analyze(parse_package(refactored_source()))


def validate_refactored(typed: TypedPackage = None) -> bool:
    typed = typed or refactored_package()
    interp = Interpreter(typed)
    for vector in FIPS197_VECTORS:
        padded = list(vector.key) + [0] * (32 - len(vector.key))
        out = interp.call_procedure(
            "Cipher", [padded, vector.nk, list(vector.plaintext), None])
        if tuple(out["Output"]) != vector.ciphertext:
            raise AssertionError(f"{vector.name}: encrypt mismatch")
        back = interp.call_procedure(
            "Inv_Cipher", [padded, vector.nk, list(vector.ciphertext), None])
        if tuple(back["Output"]) != vector.plaintext:
            raise AssertionError(f"{vector.name}: decrypt mismatch")
    return True
