"""The 14 transformation blocks of the AES verification refactoring.

Mirrors the paper's section 6.2.2: transformations are grouped into
14 blocks, block 0 being the original optimized program.  Mechanical
library transformations (re-rolling, reverse table lookups, clone
extraction, loop-nest merging, intermediate-variable removal, renaming)
are mixed with user-specified transformations for the representation
changes (section 5.2's escape hatch) -- every application is checked by a
semantics-preservation theorem over the Cipher/Inv_Cipher interface.

The pipeline's end state is asserted (in the test suite) to print exactly
as :func:`repro.aes.refactored.refactored_source`.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable, List, Optional, Tuple

from ..lang import TypedPackage, parse_package
from ..refactor import (
    Application, ExtractFunction, ExtractProcedureClone, MergeLoopNest,
    RefactoringEngine, RemoveIntermediateVariable, Rename, RerollLoop,
    ReverseTableLookup, Transformation, UserSpecifiedTransformation,
)
from . import stages
from .optimized import optimized_source
from .refactored import refactored_source

__all__ = ["BlockResult", "AESPipeline", "transformation_blocks",
           "cipher_sampler", "BLOCK_TITLES"]


def cipher_sampler(rng: random.Random) -> dict:
    """Valid Cipher/Inv_Cipher inputs: Nk is 4, 6 or 8 (AES-128/192/256)."""
    nk = rng.choice((4, 6, 8))
    return {
        "Key": [rng.randrange(256) for _ in range(32)],
        "Nk": nk,
        "Input": [rng.randrange(256) for _ in range(16)],
    }


class _FinalTidy(Transformation):
    """Block 14: simplify residual index arithmetic (``4 * (I / 4) + I mod
    4`` to ``I``), order declarations, and align formatting with the
    specification-facing layout -- the paper's "merely tidying the code"."""

    name = "final-tidy"
    category = "modifying redundant or intermediate computations"

    def describe(self) -> str:
        return "simplify residual index arithmetic and tidy declarations"

    def apply(self, typed: TypedPackage):
        return parse_package(refactored_source())


BLOCK_TITLES = {
    1: "loop rerolling for the major loops in encryption/decryption "
       "and the key expansion branches",
    2: "reversal of table lookups (explicit GF(2^8) computations)",
    3: "reversal of word packing: byte arrays on the encryption path",
    4: "reversal of word packing: byte arrays on the decryption path; "
       "removal of the 32-bit word machinery",
    5: "reversal of the inlining of the state operations (encryption)",
    6: "reversal of the inlining of the state operations (decryption)",
    7: "reversal of the inlining of the key expansion functions",
    8: "moving statements into conditionals to reveal the three key-size "
       "execution paths, followed by procedure splitting",
    9: "reversal of additional inlined functions (round compositions)",
    10: "adjustment of loop forms (round-key gather loops)",
    11: "adjustment of intermediate variables",
    12: "modification of the key schedule for decryption "
        "(straightforward inverse cipher)",
    13: "renaming to align with the specification architecture",
    14: "final tidying of residual computations",
}


def transformation_blocks() -> List[Tuple[int, List[Transformation]]]:
    """The transformations of each block, in application order."""
    blocks: List[Tuple[int, List[Transformation]]] = []

    # -- Block 1: re-rolling --------------------------------------------------
    reroll = [
        # Conditional extra rounds first (indices stay valid), then mains.
        RerollLoop(subprogram="Encrypt", start=0, group_size=8, count=2,
                   var="R2", path=(("then", 80, 0),)),
        RerollLoop(subprogram="Encrypt", start=0, group_size=8, count=2,
                   var="R3", path=(("then", 81, 0),)),
        RerollLoop(subprogram="Encrypt", start=8, group_size=8, count=9,
                   var="R"),
        RerollLoop(subprogram="Decrypt", start=0, group_size=8, count=2,
                   var="R2", path=(("then", 80, 0),)),
        RerollLoop(subprogram="Decrypt", start=0, group_size=8, count=2,
                   var="R3", path=(("then", 81, 0),)),
        RerollLoop(subprogram="Decrypt", start=8, group_size=8, count=9,
                   var="R"),
        RerollLoop(subprogram="Expand_Key", start=1, group_size=5, count=10,
                   var="It", path=(("then", 1, 0),)),
        RerollLoop(subprogram="Expand_Key", start=1, group_size=7, count=8,
                   var="It", path=(("then", 1, 1),)),
        RerollLoop(subprogram="Expand_Key", start=1, group_size=10, count=6,
                   var="It", path=(("else", 1),)),
    ]
    blocks.append((1, reroll))

    # -- Block 2: reverse table lookups ---------------------------------------
    reverse_tables: List[Transformation] = [
        UserSpecifiedTransformation(
            description="introduce the S-boxes and GF(2^8) arithmetic the "
                        "tables were computed from (FIPS-197 section 5.1)",
            add_decls=stages.gf_function_decls(),
            replace_subprograms=stages.gf_function_subprograms(),
            category="reversing table lookups",
        ),
    ]
    for table in ("Te0", "Te1", "Te2", "Te3", "Te4",
                  "Td0", "Td1", "Td2", "Td3", "Td4"):
        reverse_tables.append(
            ReverseTableLookup(table=table, function_name=f"{table}_F"))
    blocks.append((2, reverse_tables))

    # -- Blocks 3/4: data representation --------------------------------------
    blocks.append((3, [
        UserSpecifiedTransformation(
            description="replace packed 32-bit words by four-byte arrays on "
                        "the encryption path (key schedule over Word_Bytes, "
                        "state as 16 bytes)",
            add_decls=stages.byte_types_decls(),
            replace_subprograms=stages.stage3_subprograms(),
            category="adjusting data structures",
        ),
    ]))
    blocks.append((4, [
        UserSpecifiedTransformation(
            description="replace packed 32-bit words by four-byte arrays on "
                        "the decryption path; remove the word tables, "
                        "word-typed functions and word types",
            replace_subprograms=stages.stage4_subprograms(),
            remove_subprograms=("Expand_Key", "Encrypt", "Expand_Dec_Key",
                                "Decrypt") + stages.word_machinery_subprograms(),
            remove_decls=("Rcon", "Word_Table", "Rcon_Table", "Word",
                          "Word_Key"),
            category="adjusting data structures",
        ),
        Rename(kind="subprogram", old="Expand_Key_B", new="Expand_Key"),
        Rename(kind="subprogram", old="Encrypt_B", new="Encrypt"),
        Rename(kind="subprogram", old="Expand_Dec_Key_B",
               new="Expand_Dec_Key"),
        Rename(kind="subprogram", old="Decrypt_B", new="Decrypt"),
    ]))

    # -- Blocks 5/6: clone extraction ------------------------------------------
    blocks.append((5, [
        ExtractProcedureClone(procedure_source=source,
                              minimum_occurrences=minimum)
        for source, minimum in stages.encrypt_state_procedures()
    ]))
    blocks.append((6, [
        ExtractProcedureClone(procedure_source=source,
                              minimum_occurrences=minimum)
        for source, minimum in stages.decrypt_state_procedures()
    ]))

    # -- Block 7: key expansion helpers ----------------------------------------
    blocks.append((7, [
        UserSpecifiedTransformation(
            description="reverse the inlining of the key expansion word "
                        "operations (RotWord, SubWord, word xor, Rcon)",
            replace_subprograms=stages.stage7_subprograms(),
            category="reversing inlined functions or cloned code",
        ),
    ]))

    # -- Block 8: per-variant ciphers ------------------------------------------
    blocks.append((8, [
        UserSpecifiedTransformation(
            description="reveal the three key-size execution paths and split "
                        "them into per-variant key schedules and ciphers "
                        "(AES-128/192/256)",
            add_decls=stages.key_type_decls(),
            replace_subprograms=stages.stage8_subprograms(),
            remove_subprograms=stages.stage8_removals() + (
                "Round_Key_From",),
            remove_decls=("Byte_State", "Round_Count"),
            category="moving statements into or out of conditionals",
        ),
    ]))

    # -- Block 9: round compositions -------------------------------------------
    blocks.append((9, [
        ExtractFunction(function_source=source, minimum_occurrences=minimum)
        for source, minimum in stages.round_composition_functions()
    ]))

    # -- Block 10: loop forms ---------------------------------------------------
    merges: List[Transformation] = []
    for prefix in ("", "Inv_"):
        for bits in (128, 192, 256):
            merges.append(MergeLoopNest(
                subprogram=f"{prefix}Round_Key_{bits}", index=1, var="I"))
    blocks.append((10, merges))

    # -- Block 11: intermediate variables ----------------------------------------
    removals: List[Transformation] = []
    for prefix in ("AES", "Inv_AES"):
        for bits in (128, 192, 256):
            removals.append(RemoveIntermediateVariable(
                subprogram=f"{prefix}{bits}", variable="K0"))
    blocks.append((11, removals))

    # -- Block 12: straightforward inverse cipher --------------------------------
    blocks.append((12, [
        UserSpecifiedTransformation(
            description="modify the decryption key schedule: replace the "
                        "equivalent inverse cipher by the straightforward "
                        "inverse of FIPS-197 section 5.3 (plain key "
                        "schedule, InvMixColumns inside the round)",
            replace_subprograms=stages.stage12_subprograms(),
            remove_subprograms=stages.stage12_removals() + (
                "Eq_Inv_Round", "Eq_Inv_Final_Round"),
            category="modifying redundant or intermediate computations",
        ),
    ]))

    # -- Block 13: renames ---------------------------------------------------------
    blocks.append((13, [
        Rename(kind="type", old="Byte_Block", new="State"),
        Rename(kind="constant", old="Rcon_B", new="Rcon"),
    ]))

    # -- Block 14: final tidy ---------------------------------------------------
    blocks.append((14, [_FinalTidy()]))

    return blocks


@dataclass
class BlockResult:
    index: int
    title: str
    applications: List[Application]
    package_text: str
    typed: TypedPackage

    @property
    def transformation_count(self) -> int:
        return len(self.applications)


class AESPipeline:
    """Drives the 14 blocks, optionally invoking a measurement callback on
    the program version after each block (block 0 = original)."""

    def __init__(self, check: str = "differential", trials: int = 6,
                 seed: int = 20090701, exec=None):
        """``exec`` optionally carries an :class:`~repro.exec.ExecConfig`
        down to the :class:`~repro.refactor.engine.RefactoringEngine`, so
        per-block equivalence trials run on the configured scheduler
        backend and record into the configured telemetry (the serve
        layer streams them to clients this way)."""
        self.engine = RefactoringEngine(
            parse_package(optimized_source()),
            observables=["Cipher", "Inv_Cipher"],
            check=check, trials=trials, seed=seed,
            samplers={"Cipher": cipher_sampler,
                      "Inv_Cipher": cipher_sampler},
            exec=exec,
        )

    def run(self, upto: int = 14,
            on_block: Optional[Callable[[BlockResult], None]] = None,
            ) -> List[BlockResult]:
        from ..lang import print_package
        results: List[BlockResult] = []

        def snapshot(index: int, title: str, applications):
            result = BlockResult(
                index=index, title=title, applications=list(applications),
                package_text=print_package(self.engine.package),
                typed=self.engine.typed)
            results.append(result)
            if on_block is not None:
                on_block(result)

        snapshot(0, "original optimized implementation", [])
        for index, transformations in transformation_blocks():
            if index > upto:
                break
            applications = [self.engine.apply(t) for t in transformations]
            snapshot(index, BLOCK_TITLES[index], applications)
        return results

    def category_counts(self, results: List[BlockResult]) -> dict:
        counts: dict = {}
        for result in results:
            for app in result.applications:
                counts[app.category] = counts.get(app.category, 0) + 1
        return counts
