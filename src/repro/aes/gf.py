"""GF(2^8) arithmetic and AES table generation (first principles).

Everything downstream -- the optimized implementation's T-tables, the
FIPS-197 specification's S-boxes, and the reverse-table-lookup
transformations -- derives from this module, so the reproduction carries no
opaque magic tables: ``sbox()`` is computed from the multiplicative inverse
and the affine transform exactly as FIPS-197 section 5.1.1 defines it.
"""

from __future__ import annotations

from functools import lru_cache
from typing import List, Tuple

__all__ = [
    "xtime", "gmul", "ginv", "sbox", "inv_sbox", "rcon_words",
    "te_tables", "td_tables", "te4", "td4", "rotr32",
]

_AES_POLY = 0x11B  # x^8 + x^4 + x^3 + x + 1


def xtime(b: int) -> int:
    """Multiply by x (i.e. 2) in GF(2^8)."""
    b <<= 1
    if b & 0x100:
        b ^= _AES_POLY
    return b & 0xFF


def gmul(a: int, b: int) -> int:
    """Carry-less multiply modulo the AES polynomial."""
    result = 0
    a &= 0xFF
    b &= 0xFF
    while b:
        if b & 1:
            result ^= a
        a = xtime(a)
        b >>= 1
    return result


def ginv(a: int) -> int:
    """Multiplicative inverse in GF(2^8) (0 maps to 0, per FIPS-197)."""
    if a == 0:
        return 0
    # a^254 = a^-1 in GF(2^8)*
    result = 1
    base = a
    exponent = 254
    while exponent:
        if exponent & 1:
            result = gmul(result, base)
        base = gmul(base, base)
        exponent >>= 1
    return result


@lru_cache(maxsize=None)
def sbox() -> Tuple[int, ...]:
    """The AES S-box: affine transform of the multiplicative inverse."""
    out: List[int] = []
    for x in range(256):
        b = ginv(x)
        y = 0
        for bit in range(8):
            v = ((b >> bit) & 1) ^ ((b >> ((bit + 4) % 8)) & 1) \
                ^ ((b >> ((bit + 5) % 8)) & 1) ^ ((b >> ((bit + 6) % 8)) & 1) \
                ^ ((b >> ((bit + 7) % 8)) & 1) ^ ((0x63 >> bit) & 1)
            y |= v << bit
        out.append(y)
    return tuple(out)


@lru_cache(maxsize=None)
def inv_sbox() -> Tuple[int, ...]:
    forward = sbox()
    out = [0] * 256
    for x, y in enumerate(forward):
        out[y] = x
    return tuple(out)


def rotr32(w: int, n: int) -> int:
    """32-bit rotate right."""
    n %= 32
    return ((w >> n) | (w << (32 - n))) & 0xFFFFFFFF


@lru_cache(maxsize=None)
def te_tables() -> Tuple[Tuple[int, ...], ...]:
    """Te0..Te3: the encryption T-tables of the optimized implementation.

    ``Te0[x]`` packs the MixColumns column of ``S[x]``:
    ``(2*S <<24) | (S <<16) | (S <<8) | 3*S``; Te1..Te3 are byte rotations.
    """
    s = sbox()
    te0 = []
    for x in range(256):
        v = s[x]
        word = (gmul(v, 2) << 24) | (v << 16) | (v << 8) | gmul(v, 3)
        te0.append(word)
    te0 = tuple(te0)
    return (te0,
            tuple(rotr32(w, 8) for w in te0),
            tuple(rotr32(w, 16) for w in te0),
            tuple(rotr32(w, 24) for w in te0))


@lru_cache(maxsize=None)
def td_tables() -> Tuple[Tuple[int, ...], ...]:
    """Td0..Td3: the decryption T-tables (InvMixColumns over InvSbox)."""
    si = inv_sbox()
    td0 = []
    for x in range(256):
        v = si[x]
        word = (gmul(v, 14) << 24) | (gmul(v, 9) << 16) \
            | (gmul(v, 13) << 8) | gmul(v, 11)
        td0.append(word)
    td0 = tuple(td0)
    return (td0,
            tuple(rotr32(w, 8) for w in td0),
            tuple(rotr32(w, 16) for w in td0),
            tuple(rotr32(w, 24) for w in td0))


@lru_cache(maxsize=None)
def te4() -> Tuple[int, ...]:
    """Te4[x] = S[x] replicated into all four bytes (final round / key
    schedule table of the optimized implementation)."""
    s = sbox()
    return tuple(v * 0x01010101 for v in s)


@lru_cache(maxsize=None)
def td4() -> Tuple[int, ...]:
    si = inv_sbox()
    return tuple(v * 0x01010101 for v in si)


@lru_cache(maxsize=None)
def rcon_words() -> Tuple[int, ...]:
    """Round constants as words: x^i in the top byte (10 entries)."""
    out = []
    v = 1
    for _ in range(10):
        out.append(v << 24)
        v = xtime(v)
    return tuple(out)
