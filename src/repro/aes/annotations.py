"""Annotations for the refactored AES (the paper's section 6.2.3).

After refactoring, "the code was examined and annotated manually"; this
module holds that manual annotation set: pre/postconditions, loop
invariants (``--# assert`` at loop heads) and proof functions/rules, and
attaches them to the refactored package.  Table 1's counts are computed
from the result by :func:`repro.lang.count_annotations`.

The proof functions ``Enc_<bits>``/``Inv_<bits>`` name the round-iteration
states so the cipher loops get inductive invariants -- the proof-rule
guards are written as disjunctions because SPARK-style annotations have no
implication operator.
"""

from __future__ import annotations

import dataclasses
from functools import lru_cache
from typing import Dict, List, Sequence, Tuple

from ..lang import TypedPackage, analyze, parse_package, ast
from .refactored import refactored_source

__all__ = ["annotated_source_package", "annotated_package",
           "build_annotated"]


def _loop16(result: str, formula: str, upto: int = 15,
            bound: str = "Kb") -> Tuple[str, str]:
    """(invariant, post) pair for an element-wise building loop."""
    post = (f"for all {bound} in 0 .. {upto} => "
            f"({result} ({bound}) = ({formula}))")
    inv = (f"for all {bound} in 0 .. I - 1 => "
           f"(R ({bound}) = ({formula}))")
    return inv, post


_MIX_FORMULAS = [
    "GF_Mul2 (S (4 * Cc)) xor GF_Mul3 (S (4 * Cc + 1)) xor "
    "(S (4 * Cc + 2) xor S (4 * Cc + 3))",
    "S (4 * Cc) xor GF_Mul2 (S (4 * Cc + 1)) xor "
    "(GF_Mul3 (S (4 * Cc + 2)) xor S (4 * Cc + 3))",
    "S (4 * Cc) xor S (4 * Cc + 1) xor "
    "(GF_Mul2 (S (4 * Cc + 2)) xor GF_Mul3 (S (4 * Cc + 3)))",
    "GF_Mul3 (S (4 * Cc)) xor S (4 * Cc + 1) xor "
    "(S (4 * Cc + 2) xor GF_Mul2 (S (4 * Cc + 3)))",
]

_INV_MIX_FORMULAS = [
    "GF_Mul14 (S (4 * Cc)) xor GF_Mul11 (S (4 * Cc + 1)) xor "
    "(GF_Mul13 (S (4 * Cc + 2)) xor GF_Mul9 (S (4 * Cc + 3)))",
    "GF_Mul9 (S (4 * Cc)) xor GF_Mul14 (S (4 * Cc + 1)) xor "
    "(GF_Mul11 (S (4 * Cc + 2)) xor GF_Mul13 (S (4 * Cc + 3)))",
    "GF_Mul13 (S (4 * Cc)) xor GF_Mul9 (S (4 * Cc + 1)) xor "
    "(GF_Mul14 (S (4 * Cc + 2)) xor GF_Mul11 (S (4 * Cc + 3)))",
    "GF_Mul11 (S (4 * Cc)) xor GF_Mul13 (S (4 * Cc + 1)) xor "
    "(GF_Mul9 (S (4 * Cc + 2)) xor GF_Mul14 (S (4 * Cc + 3)))",
]


def _mix_annotations(formulas, offsets=("", " + 1", " + 2", " + 3")):
    invs = []
    posts = []
    for r, formula in enumerate(formulas):
        suffix = offsets[r]
        target = f"R (4 * Cc{suffix})"
        post_target = f"Result (4 * Cc{suffix})"
        invs.append(
            f"for all Cc in 0 .. C - 1 => ({target} = ({formula}))")
        posts.append(
            f"for all Cc in 0 .. 3 => ({post_target} = ({formula}))")
    return invs, posts


def _key_schedule_annotations(bits: int, nk: int, words: int):
    base = (f"for all Kw in 0 .. {nk - 1} => (for all Kb in 0 .. 3 => "
            f"(W (Kw) (Kb) = Key (4 * Kw + Kb)))")
    boundary = (f"((Kw mod {nk} = 0) and (W (Kw) = Xor_Words (W (Kw - {nk}), "
                f"Xor_Words (Sub_Word (Rot_Word (W (Kw - 1))), "
                f"Rcon_Word (Kw / {nk} - 1)))))")
    plain = (f"((Kw mod {nk} /= 0) and "
             f"(W (Kw) = Xor_Words (W (Kw - {nk}), W (Kw - 1))))")
    if nk == 8:
        middle = ("((Kw mod 8 = 4) and "
                  "(W (Kw) = Xor_Words (W (Kw - 8), Sub_Word (W (Kw - 1)))))")
        plain = (f"(((Kw mod {nk} /= 0) and (Kw mod 8 /= 4)) and "
                 f"(W (Kw) = Xor_Words (W (Kw - {nk}), W (Kw - 1))))")
        step_body = f"{boundary} or ({middle} or {plain})"
    else:
        step_body = f"{boundary} or {plain}"
    step = f"for all Kw in {nk} .. I - 1 => ({step_body})"
    step_post = f"for all Kw in {nk} .. {words - 1} => ({step_body})"
    return {
        "post": [base, step_post],
        "asserts": {
            # init loop: outer invariant; inner invariant restates it plus
            # the partially built word.
            ("loop", 0): [base.replace(f"0 .. {nk - 1}", "0 .. I - 1")],
            ("loop", 0, 0): [
                base.replace(f"0 .. {nk - 1}", "0 .. I - 1"),
                "for all Kb in 0 .. J - 1 => (W (I) (Kb) = Key (4 * I + Kb))",
            ],
            ("loop", 1): [base, step],
        },
    }


def _cipher_annotations(bits: int, rounds: int):
    enc = f"Enc_{bits}"
    inv = f"Inv_{bits}"
    rk = f"Round_Key_{bits}"
    return {
        f"AES{bits}": {
            "post": [f"Result = Final_Round ({enc} (Key, Input, "
                     f"{rounds - 1}), {rk} (Key, {rounds}))"],
            "asserts": {("loop", 1): [f"S = {enc} (Key, Input, R - 1)"]},
        },
        f"Inv_AES{bits}": {
            "post": [f"Result = Inv_Final_Round ({inv} (Key, Input, 1), "
                     f"{rk} (Key, 0))"],
            "asserts": {("loop", 1): [f"S = {inv} (Key, Input, R + 1)"]},
        },
    }


def _proof_decls() -> str:
    out = []
    for bits, nk, rounds in ((128, 4, 10), (192, 6, 12), (256, 8, 14)):
        key_type = f"Key{nk * 4}"
        rk = f"Round_Key_{bits}"
        out.append(f"""   --# function Enc_{bits} (Key : in {key_type}; Input : in State; R : in Integer) return State;
   --# function Inv_{bits} (Key : in {key_type}; Input : in State; R : in Integer) return State;
   --# rule Enc_{bits}_Base (Key : in {key_type}; Input : in State): Enc_{bits} (Key, Input, 0) = Add_Round_Key (Input, {rk} (Key, 0));
   --# rule Enc_{bits}_Step (Key : in {key_type}; Input : in State; R : in Integer): (R <= 0) or (Enc_{bits} (Key, Input, R) = Round (Enc_{bits} (Key, Input, R - 1), {rk} (Key, R)));
   --# rule Inv_{bits}_Base (Key : in {key_type}; Input : in State): Inv_{bits} (Key, Input, {rounds}) = Add_Round_Key (Input, {rk} (Key, {rounds}));
   --# rule Inv_{bits}_Step (Key : in {key_type}; Input : in State; R : in Integer): (R <= 0) or ((R >= {rounds}) or (Inv_{bits} (Key, Input, R) = Inv_Round (Inv_{bits} (Key, Input, R + 1), {rk} (Key, R))));
""")
    return "".join(out)


def _annotation_table() -> Dict[str, dict]:
    sbox16 = "Sbox (Integer (S (Kb)))"
    table: Dict[str, dict] = {
        "X_Time": {
            "post": ["((B < 128) and (Result = B + B)) or "
                     "((B >= 128) and (Result = ((B + B) xor 27)))"],
        },
        "GF_Mul2": {"post": ["Result = X_Time (B)"]},
        "GF_Mul3": {"post": ["Result = (X_Time (B) xor B)"]},
        "GF_Mul9": {"post": ["Result = (X_Time (X_Time (X_Time (B))) xor B)"]},
        "GF_Mul11": {"post": ["Result = (X_Time (X_Time (X_Time (B))) xor "
                              "(X_Time (B) xor B))"]},
        "GF_Mul13": {"post": ["Result = (X_Time (X_Time (X_Time (B))) xor "
                              "(X_Time (X_Time (B)) xor B))"]},
        "GF_Mul14": {"post": ["Result = (X_Time (X_Time (X_Time (B))) xor "
                              "(X_Time (X_Time (B)) xor X_Time (B)))"]},
        "Round": {"post": ["Result = Add_Round_Key (Mix_Columns "
                           "(Shift_Rows (Sub_Bytes (S))), K)"]},
        "Final_Round": {"post": ["Result = Add_Round_Key "
                                 "(Shift_Rows (Sub_Bytes (S)), K)"]},
        "Inv_Round": {"post": ["Result = Inv_Mix_Columns (Add_Round_Key "
                               "(Inv_Shift_Rows (Inv_Sub_Bytes (S)), K))"]},
        "Inv_Final_Round": {"post": ["Result = Add_Round_Key "
                                     "(Inv_Shift_Rows (Inv_Sub_Bytes (S)), "
                                     "K)"]},
        "Rcon_Word": {
            "post": ["Result (0) = Rcon (R)",
                     "for all Kb in 1 .. 3 => (Result (Kb) = 0)"],
            "asserts": {("loop", 1): [
                "W (0) = Rcon (R)",
                "for all Kb in 1 .. I - 1 => (W (Kb) = 0)"]},
        },
    }

    def elementwise(name, formula, upto=15, local="R"):
        inv, post = _loop16("Result", formula, upto=upto)
        table[name] = {
            "post": [post],
            "asserts": {("loop", 0): [inv.replace("R (", f"{local} (")]},
        }

    elementwise("Sub_Bytes", sbox16)
    elementwise("Inv_Sub_Bytes", "Inv_Sbox (Integer (S (Kb)))")
    elementwise("Shift_Rows",
                "S (4 * ((Kb / 4 + Kb mod 4) mod 4) + Kb mod 4)")
    elementwise("Inv_Shift_Rows",
                "S (4 * ((Kb / 4 + 4 - Kb mod 4) mod 4) + Kb mod 4)")
    elementwise("Add_Round_Key", "S (Kb) xor K (Kb)")
    elementwise("Rot_Word", "W ((Kb + 1) mod 4)", upto=3)
    elementwise("Sub_Word", "Sbox (Integer (W (Kb)))", upto=3)
    elementwise("Xor_Words", "A (Kb) xor B (Kb)", upto=3)

    invs, posts = _mix_annotations(_MIX_FORMULAS)
    table["Mix_Columns"] = {"post": posts, "asserts": {("loop", 0): invs}}
    invs, posts = _mix_annotations(_INV_MIX_FORMULAS)
    table["Inv_Mix_Columns"] = {"post": posts, "asserts": {("loop", 0): invs}}

    for bits, nk, words in ((128, 4, 44), (192, 6, 52), (256, 8, 60)):
        table[f"Key_Schedule_{bits}"] = _key_schedule_annotations(
            bits, nk, words)
        table[f"Round_Key_{bits}"] = {
            "post": [f"for all Kb in 0 .. 15 => (Result (Kb) = "
                     f"Key_Schedule_{bits} (Key) (4 * R + Kb / 4) "
                     f"(Kb mod 4))"],
            "asserts": {("loop", 1): [
                "for all Kb in 0 .. I - 1 => "
                "(K (Kb) = W (4 * R + Kb / 4) (Kb mod 4))"]},
        }
    for bits, rounds in ((128, 10), (192, 12), (256, 14)):
        table.update(_cipher_annotations(bits, rounds))
    return table


def _insert_asserts(body: Tuple[ast.Stmt, ...], spec: dict,
                    prefix: Tuple = ()) -> Tuple[ast.Stmt, ...]:
    out = []
    for i, stmt in enumerate(body):
        if isinstance(stmt, ast.For):
            key = ("loop",) + prefix + (i,)
            inner = _insert_asserts(stmt.body, spec, prefix + (i,))
            heads = spec.get(key, ())
            new_asserts = tuple(ast.Assert(expr=e) for e in heads)
            stmt = dataclasses.replace(stmt, body=new_asserts + inner)
        out.append(stmt)
    return tuple(out)


def _attach_annotations(source: str, table) -> ast.Package:
    from ..lang.parser import parse_expression
    # Proof functions and rules are package-level declarations.
    source = source.replace("end AES_Impl;",
                            _proof_decls() + "end AES_Impl;")
    pkg = parse_package(source)
    new_subprograms = []
    for sp in pkg.subprograms:
        spec = table.get(sp.name)
        if spec is None:
            new_subprograms.append(sp)
            continue
        pre = sp.pre + tuple(parse_expression(e)
                             for e in spec.get("pre", ()))
        post = sp.post + tuple(parse_expression(e)
                               for e in spec.get("post", ()))
        assert_specs = {k: [parse_expression(e) for e in v]
                        for k, v in spec.get("asserts", {}).items()}
        body = _insert_asserts(sp.body, assert_specs)
        new_subprograms.append(dataclasses.replace(
            sp, pre=pre, post=post, body=body))
    return dataclasses.replace(pkg, subprograms=tuple(new_subprograms))


@lru_cache(maxsize=None)
def annotated_source_package() -> ast.Package:
    """The refactored package with the full annotation set attached."""
    return _attach_annotations(refactored_source(), _annotation_table())


@lru_cache(maxsize=None)
def annotated_package() -> TypedPackage:
    return analyze(annotated_source_package())


def build_annotated(source: str, annotation_patches=()) -> TypedPackage:
    """Annotate an arbitrary (e.g. defect-seeded) variant of the refactored
    source.  ``annotation_patches`` are (old, new) pairs applied to every
    annotation formula -- how the defect experiment's setup 1 makes the
    annotations describe the defective code's actual behaviour."""
    table = _annotation_table()
    if annotation_patches:
        def patch(text: str) -> str:
            for old, new in annotation_patches:
                text = text.replace(old, new)
            return text

        patched = {}
        for name, spec in table.items():
            new_spec = dict(spec)
            if "pre" in new_spec:
                new_spec["pre"] = [patch(e) for e in new_spec["pre"]]
            if "post" in new_spec:
                new_spec["post"] = [patch(e) for e in new_spec["post"]]
            if "asserts" in new_spec:
                new_spec["asserts"] = {
                    k: [patch(e) for e in v]
                    for k, v in new_spec["asserts"].items()}
            patched[name] = new_spec
        table = patched
    return analyze(_attach_annotations(source, table))
