"""Intermediate program versions for the user-specified transformation
blocks of the AES refactoring pipeline.

The paper's pipeline mixes library transformations (applied mechanically by
pattern matching) with transformations the user specifies and proves
(section 5.2).  This module holds the *specified* parts: the replacement
declarations and subprograms for each representation-changing block.  Every
application is still checked by the engine's semantics-preservation
theorem over Cipher/Inv_Cipher.
"""

from __future__ import annotations

from . import gf

__all__ = [
    "gf_function_decls", "gf_function_subprograms",
    "byte_types_decls", "stage3_subprograms", "stage4_subprograms",
    "word_machinery_subprograms", "key_type_decls",
    "stage7_subprograms", "stage8_subprograms", "stage8_removals",
    "stage12_subprograms", "stage12_removals",
    "encrypt_state_procedures", "decrypt_state_procedures",
    "round_composition_functions",
]


# ---------------------------------------------------------------------------
# Block 2: GF arithmetic, S-boxes, and the explicit table computations
# ---------------------------------------------------------------------------

def gf_function_decls() -> str:
    sbox = ", ".join(str(v) for v in gf.sbox())
    inv = ", ".join(str(v) for v in gf.inv_sbox())
    return f"""   type Byte_Table is array (0 .. 255) of Byte;
   Sbox : constant Byte_Table := ({sbox});
   Inv_Sbox : constant Byte_Table := ({inv});
"""


_GF_FUNCTIONS = """   function X_Time (B : in Byte) return Byte
   is
   begin
      if B < 128 then
         return B + B;
      end if;
      return (B + B) xor 27;
   end X_Time;

   function GF_Mul2 (B : in Byte) return Byte
   is
   begin
      return X_Time (B);
   end GF_Mul2;

   function GF_Mul3 (B : in Byte) return Byte
   is
   begin
      return X_Time (B) xor B;
   end GF_Mul3;

   function GF_Mul9 (B : in Byte) return Byte
   is
   begin
      return X_Time (X_Time (X_Time (B))) xor B;
   end GF_Mul9;

   function GF_Mul11 (B : in Byte) return Byte
   is
   begin
      return X_Time (X_Time (X_Time (B))) xor (X_Time (B) xor B);
   end GF_Mul11;

   function GF_Mul13 (B : in Byte) return Byte
   is
   begin
      return X_Time (X_Time (X_Time (B))) xor (X_Time (X_Time (B)) xor B);
   end GF_Mul13;

   function GF_Mul14 (B : in Byte) return Byte
   is
   begin
      return X_Time (X_Time (X_Time (B))) xor
             (X_Time (X_Time (B)) xor X_Time (B));
   end GF_Mul14;
"""


def _word_of(parts) -> str:
    """Pack four byte expressions into a Word expression."""
    b3, b2, b1, b0 = parts
    return (f"Shift_Left (Word ({b3}), 24) or Shift_Left (Word ({b2}), 16) "
            f"or Shift_Left (Word ({b1}), 8) or Word ({b0})")


def _te_function(name: str, parts) -> str:
    return f"""   function {name} (X : in Integer) return Word
   --# pre X >= 0 and X <= 255;
   is
   begin
      return {_word_of(parts)};
   end {name};
"""


def gf_function_subprograms() -> str:
    """X_Time/GF_Mul* plus the explicit computations of the ten T-tables
    (documented optimizations reversed: Te0[x] packs the MixColumns column
    of Sbox[x], etc.)."""
    s = "Sbox (X)"
    e = "Inv_Sbox (X)"
    te = [
        ("Te0_F", (f"GF_Mul2 ({s})", s, s, f"GF_Mul3 ({s})")),
        ("Te1_F", (f"GF_Mul3 ({s})", f"GF_Mul2 ({s})", s, s)),
        ("Te2_F", (s, f"GF_Mul3 ({s})", f"GF_Mul2 ({s})", s)),
        ("Te3_F", (s, s, f"GF_Mul3 ({s})", f"GF_Mul2 ({s})")),
        ("Te4_F", (s, s, s, s)),
        ("Td0_F", (f"GF_Mul14 ({e})", f"GF_Mul9 ({e})",
                   f"GF_Mul13 ({e})", f"GF_Mul11 ({e})")),
        ("Td1_F", (f"GF_Mul11 ({e})", f"GF_Mul14 ({e})",
                   f"GF_Mul9 ({e})", f"GF_Mul13 ({e})")),
        ("Td2_F", (f"GF_Mul13 ({e})", f"GF_Mul11 ({e})",
                   f"GF_Mul14 ({e})", f"GF_Mul9 ({e})")),
        ("Td3_F", (f"GF_Mul9 ({e})", f"GF_Mul13 ({e})",
                   f"GF_Mul11 ({e})", f"GF_Mul14 ({e})")),
        ("Td4_F", (e, e, e, e)),
    ]
    return _GF_FUNCTIONS + "".join(_te_function(n, p) for n, p in te)


# ---------------------------------------------------------------------------
# Blocks 3/4: byte representation (adjusting data structures)
# ---------------------------------------------------------------------------

def byte_types_decls() -> str:
    rcon = ", ".join(str(w >> 24) for w in gf.rcon_words())
    return f"""   type Byte_State is array (0 .. 15) of Byte;
   type Word_Bytes is array (0 .. 3) of Byte;
   type Rcon_Bytes is array (0 .. 9) of Byte;
   type Schedule44 is array (0 .. 43) of Word_Bytes;
   type Schedule52 is array (0 .. 51) of Word_Bytes;
   type Schedule60 is array (0 .. 59) of Word_Bytes;
   Rcon_B : constant Rcon_Bytes := ({rcon});
"""


_SHIFT_ROWS_INDEX = "4 * ((I / 4 + I mod 4) mod 4) + I mod 4"
_INV_SHIFT_ROWS_INDEX = "4 * ((I / 4 + 4 - I mod 4) mod 4) + I mod 4"

_MIX_ROWS = [
    ("GF_Mul2 ({0})", "GF_Mul3 ({1})", "{2}", "{3}"),
    ("{0}", "GF_Mul2 ({1})", "GF_Mul3 ({2})", "{3}"),
    ("{0}", "{1}", "GF_Mul2 ({2})", "GF_Mul3 ({3})"),
    ("GF_Mul3 ({0})", "{1}", "{2}", "GF_Mul2 ({3})"),
]

_INV_MIX_ROWS = [
    ("GF_Mul14 ({0})", "GF_Mul11 ({1})", "GF_Mul13 ({2})", "GF_Mul9 ({3})"),
    ("GF_Mul9 ({0})", "GF_Mul14 ({1})", "GF_Mul11 ({2})", "GF_Mul13 ({3})"),
    ("GF_Mul13 ({0})", "GF_Mul9 ({1})", "GF_Mul14 ({2})", "GF_Mul11 ({3})"),
    ("GF_Mul11 ({0})", "GF_Mul13 ({1})", "GF_Mul9 ({2})", "GF_Mul14 ({3})"),
]


def _mix_loop(rows, source: str, dest: str) -> str:
    cells = [f"{source} (4 * C)", f"{source} (4 * C + 1)",
             f"{source} (4 * C + 2)", f"{source} (4 * C + 3)"]
    out = ["      for C in 0 .. 3 loop\n"]
    for r, row in enumerate(rows):
        terms = [part.format(*cells) for part in row]
        target = f"{dest} (4 * C)" if r == 0 else f"{dest} (4 * C + {r})"
        out.append(f"         {target} := {terms[0]} xor {terms[1]} xor "
                   f"({terms[2]} xor {terms[3]});\n")
    out.append("      end loop;\n")
    return "".join(out)


def _round_key_loop(dest: str, base_index: str) -> str:
    return (f"      for I in 0 .. 15 loop\n"
            f"         {dest} (I) := W ({base_index} + I / 4) (I mod 4);\n"
            f"      end loop;\n")


def stage3_subprograms() -> str:
    """Byte-array key schedule and encryption (as _B versions so the word
    forms stay type-correct for the still-word decryption path)."""
    return f"""   procedure Expand_Key_B (Key : in Key_Bytes; Nk : in Key_Length;
                         W : out Schedule60; Nr : out Round_Count) is
   begin
      for I in 0 .. Nk - 1 loop
         for J in 0 .. 3 loop
            W (I) (J) := Key (4 * I + J);
         end loop;
      end loop;
      Nr := Nk + 6;
      for I in Nk .. 4 * Nk + 27 loop
         if I mod Nk = 0 then
            W (I) (0) := W (I - Nk) (0) xor
               (Sbox (Integer (W (I - 1) (1))) xor Rcon_B (I / Nk - 1));
            W (I) (1) := W (I - Nk) (1) xor Sbox (Integer (W (I - 1) (2)));
            W (I) (2) := W (I - Nk) (2) xor Sbox (Integer (W (I - 1) (3)));
            W (I) (3) := W (I - Nk) (3) xor Sbox (Integer (W (I - 1) (0)));
         elsif (Nk = 8) and (I mod 8 = 4) then
            W (I) (0) := W (I - Nk) (0) xor Sbox (Integer (W (I - 1) (0)));
            W (I) (1) := W (I - Nk) (1) xor Sbox (Integer (W (I - 1) (1)));
            W (I) (2) := W (I - Nk) (2) xor Sbox (Integer (W (I - 1) (2)));
            W (I) (3) := W (I - Nk) (3) xor Sbox (Integer (W (I - 1) (3)));
         else
            for J in 0 .. 3 loop
               W (I) (J) := W (I - Nk) (J) xor W (I - 1) (J);
            end loop;
         end if;
      end loop;
   end Expand_Key_B;

   procedure Encrypt_B (W : in Schedule60; Nr : in Round_Count;
                        Input : in Byte_Block; Output : out Byte_Block) is
      S : Byte_State;
      T : Byte_State;
      U : Byte_State;
      V : Byte_State;
      K : Byte_State;
   begin
{_round_key_loop("K", "4 * 0")}      for I in 0 .. 15 loop
         S (I) := Input (I) xor K (I);
      end loop;
      for R in 1 .. Nr - 1 loop
         for I in 0 .. 15 loop
            T (I) := Sbox (Integer (S (I)));
         end loop;
         for I in 0 .. 15 loop
            U (I) := T ({_SHIFT_ROWS_INDEX});
         end loop;
{_mix_loop(_MIX_ROWS, "U", "V")}{_round_key_loop("K", "4 * R")}         for I in 0 .. 15 loop
            S (I) := V (I) xor K (I);
         end loop;
      end loop;
      for I in 0 .. 15 loop
         T (I) := Sbox (Integer (S (I)));
      end loop;
      for I in 0 .. 15 loop
         U (I) := T ({_SHIFT_ROWS_INDEX});
      end loop;
{_round_key_loop("K", "4 * Nr")}      for I in 0 .. 15 loop
         Output (I) := U (I) xor K (I);
      end loop;
   end Encrypt_B;

   procedure Cipher (Key : in Key_Bytes; Nk : in Key_Length;
                     Input : in Byte_Block; Output : out Byte_Block) is
      W : Schedule60;
      Nr : Round_Count;
   begin
      Expand_Key_B (Key, Nk, W, Nr);
      Encrypt_B (W, Nr, Input, Output);
   end Cipher;
"""


def stage4_subprograms() -> str:
    """Byte-array equivalent-inverse decryption path."""
    return f"""   procedure Expand_Dec_Key_B (Key : in Key_Bytes; Nk : in Key_Length;
                               W : out Schedule60; Nr : out Round_Count) is
      A : Byte;
   begin
      Expand_Key_B (Key, Nk, W, Nr);
      for C in 0 .. 3 loop
         for I in 0 .. 6 loop
            if I < Nr - I then
               for J in 0 .. 3 loop
                  A := W (4 * I + C) (J);
                  W (4 * I + C) (J) := W (4 * (Nr - I) + C) (J);
                  W (4 * (Nr - I) + C) (J) := A;
               end loop;
            end if;
         end loop;
      end loop;
      for I in 4 .. 4 * Nr - 1 loop
         W (I) := Inv_Mix_Word (W (I));
      end loop;
   end Expand_Dec_Key_B;

   function Inv_Mix_Word (W : in Word_Bytes) return Word_Bytes is
      R : Word_Bytes;
   begin
      R (0) := GF_Mul14 (W (0)) xor GF_Mul11 (W (1)) xor
               (GF_Mul13 (W (2)) xor GF_Mul9 (W (3)));
      R (1) := GF_Mul9 (W (0)) xor GF_Mul14 (W (1)) xor
               (GF_Mul11 (W (2)) xor GF_Mul13 (W (3)));
      R (2) := GF_Mul13 (W (0)) xor GF_Mul9 (W (1)) xor
               (GF_Mul14 (W (2)) xor GF_Mul11 (W (3)));
      R (3) := GF_Mul11 (W (0)) xor GF_Mul13 (W (1)) xor
               (GF_Mul9 (W (2)) xor GF_Mul14 (W (3)));
      return R;
   end Inv_Mix_Word;

   procedure Decrypt_B (W : in Schedule60; Nr : in Round_Count;
                        Input : in Byte_Block; Output : out Byte_Block) is
      S : Byte_State;
      T : Byte_State;
      U : Byte_State;
      V : Byte_State;
      K : Byte_State;
   begin
{_round_key_loop("K", "4 * 0")}      for I in 0 .. 15 loop
         S (I) := Input (I) xor K (I);
      end loop;
      for R in 1 .. Nr - 1 loop
         for I in 0 .. 15 loop
            U (I) := S ({_INV_SHIFT_ROWS_INDEX});
         end loop;
         for I in 0 .. 15 loop
            T (I) := Inv_Sbox (Integer (U (I)));
         end loop;
{_mix_loop(_INV_MIX_ROWS, "T", "V")}{_round_key_loop("K", "4 * R")}         for I in 0 .. 15 loop
            S (I) := V (I) xor K (I);
         end loop;
      end loop;
      for I in 0 .. 15 loop
         U (I) := S ({_INV_SHIFT_ROWS_INDEX});
      end loop;
      for I in 0 .. 15 loop
         T (I) := Inv_Sbox (Integer (U (I)));
      end loop;
{_round_key_loop("K", "4 * Nr")}      for I in 0 .. 15 loop
         Output (I) := T (I) xor K (I);
      end loop;
   end Decrypt_B;

   procedure Inv_Cipher (Key : in Key_Bytes; Nk : in Key_Length;
                         Input : in Byte_Block; Output : out Byte_Block) is
      W : Schedule60;
      Nr : Round_Count;
   begin
      Expand_Dec_Key_B (Key, Nk, W, Nr);
      Decrypt_B (W, Nr, Input, Output);
   end Inv_Cipher;
"""


def word_machinery_subprograms():
    return ("Te0_F", "Te1_F", "Te2_F", "Te3_F", "Te4_F",
            "Td0_F", "Td1_F", "Td2_F", "Td3_F", "Td4_F")


# ---------------------------------------------------------------------------
# Block 7: word-level key expansion helpers (reversing inlined functions)
# ---------------------------------------------------------------------------

_WORD_HELPERS = """   function Rot_Word (W : in Word_Bytes) return Word_Bytes
   is
      R : Word_Bytes;
   begin
      for I in 0 .. 3 loop
         R (I) := W ((I + 1) mod 4);
      end loop;
      return R;
   end Rot_Word;

   function Sub_Word (W : in Word_Bytes) return Word_Bytes
   is
      R : Word_Bytes;
   begin
      for I in 0 .. 3 loop
         R (I) := Sbox (Integer (W (I)));
      end loop;
      return R;
   end Sub_Word;

   function Xor_Words (A : in Word_Bytes; B : in Word_Bytes) return Word_Bytes
   is
      R : Word_Bytes;
   begin
      for I in 0 .. 3 loop
         R (I) := A (I) xor B (I);
      end loop;
      return R;
   end Xor_Words;

   function Rcon_Word (R : in Integer) return Word_Bytes
   --# pre R >= 0 and R <= 9;
   is
      W : Word_Bytes;
   begin
      W (0) := Rcon_B (R);
      for I in 1 .. 3 loop
         W (I) := 0;
      end loop;
      return W;
   end Rcon_Word;
"""


def stage7_subprograms() -> str:
    """Word helpers plus the Expand_Key recurrence rewritten over them."""
    return _WORD_HELPERS + """
   procedure Expand_Key (Key : in Key_Bytes; Nk : in Key_Length;
                         W : out Schedule60; Nr : out Round_Count) is
   begin
      for I in 0 .. Nk - 1 loop
         for J in 0 .. 3 loop
            W (I) (J) := Key (4 * I + J);
         end loop;
      end loop;
      Nr := Nk + 6;
      for I in Nk .. 4 * Nk + 27 loop
         if I mod Nk = 0 then
            W (I) := Xor_Words (W (I - Nk),
               Xor_Words (Sub_Word (Rot_Word (W (I - 1))),
                          Rcon_Word (I / Nk - 1)));
         elsif (Nk = 8) and (I mod 8 = 4) then
            W (I) := Xor_Words (W (I - Nk), Sub_Word (W (I - 1)));
         else
            W (I) := Xor_Words (W (I - Nk), W (I - 1));
         end if;
      end loop;
   end Expand_Key;
"""


# ---------------------------------------------------------------------------
# Block 8: per-variant ciphers (moving statements into conditionals +
# splitting procedures, paper blocks 7-11)
# ---------------------------------------------------------------------------

def _fn_helpers_as_functions() -> str:
    """The state operations as functions (their procedure forms were the
    block-5/6 clone targets; the per-variant ciphers use function
    composition so the extracted specification is directly functional)."""
    return """   function Sub_Bytes (S : in Byte_Block) return Byte_Block
   is
      R : Byte_Block;
   begin
      for I in 0 .. 15 loop
         R (I) := Sbox (Integer (S (I)));
      end loop;
      return R;
   end Sub_Bytes;

   function Inv_Sub_Bytes (S : in Byte_Block) return Byte_Block
   is
      R : Byte_Block;
   begin
      for I in 0 .. 15 loop
         R (I) := Inv_Sbox (Integer (S (I)));
      end loop;
      return R;
   end Inv_Sub_Bytes;

   function Shift_Rows (S : in Byte_Block) return Byte_Block
   is
      R : Byte_Block;
   begin
      for I in 0 .. 15 loop
         R (I) := S (4 * ((I / 4 + I mod 4) mod 4) + I mod 4);
      end loop;
      return R;
   end Shift_Rows;

   function Inv_Shift_Rows (S : in Byte_Block) return Byte_Block
   is
      R : Byte_Block;
   begin
      for I in 0 .. 15 loop
         R (I) := S (4 * ((I / 4 + 4 - I mod 4) mod 4) + I mod 4);
      end loop;
      return R;
   end Inv_Shift_Rows;

   function Mix_Columns (S : in Byte_Block) return Byte_Block
   is
      R : Byte_Block;
   begin
      for C in 0 .. 3 loop
         R (4 * C) := GF_Mul2 (S (4 * C)) xor GF_Mul3 (S (4 * C + 1)) xor
                      (S (4 * C + 2) xor S (4 * C + 3));
         R (4 * C + 1) := S (4 * C) xor GF_Mul2 (S (4 * C + 1)) xor
                          (GF_Mul3 (S (4 * C + 2)) xor S (4 * C + 3));
         R (4 * C + 2) := S (4 * C) xor S (4 * C + 1) xor
                          (GF_Mul2 (S (4 * C + 2)) xor GF_Mul3 (S (4 * C + 3)));
         R (4 * C + 3) := GF_Mul3 (S (4 * C)) xor S (4 * C + 1) xor
                          (S (4 * C + 2) xor GF_Mul2 (S (4 * C + 3)));
      end loop;
      return R;
   end Mix_Columns;

   function Inv_Mix_Columns (S : in Byte_Block) return Byte_Block
   is
      R : Byte_Block;
   begin
      for C in 0 .. 3 loop
         R (4 * C) := GF_Mul14 (S (4 * C)) xor GF_Mul11 (S (4 * C + 1)) xor
                      (GF_Mul13 (S (4 * C + 2)) xor GF_Mul9 (S (4 * C + 3)));
         R (4 * C + 1) := GF_Mul9 (S (4 * C)) xor GF_Mul14 (S (4 * C + 1)) xor
                          (GF_Mul11 (S (4 * C + 2)) xor GF_Mul13 (S (4 * C + 3)));
         R (4 * C + 2) := GF_Mul13 (S (4 * C)) xor GF_Mul9 (S (4 * C + 1)) xor
                          (GF_Mul14 (S (4 * C + 2)) xor GF_Mul11 (S (4 * C + 3)));
         R (4 * C + 3) := GF_Mul11 (S (4 * C)) xor GF_Mul13 (S (4 * C + 1)) xor
                          (GF_Mul9 (S (4 * C + 2)) xor GF_Mul14 (S (4 * C + 3)));
      end loop;
      return R;
   end Inv_Mix_Columns;

   function Add_Round_Key (S : in Byte_Block; K : in Byte_Block) return Byte_Block
   is
      R : Byte_Block;
   begin
      for I in 0 .. 15 loop
         R (I) := S (I) xor K (I);
      end loop;
      return R;
   end Add_Round_Key;
"""


def _stage8_key_schedule(bits, nk, words):
    extra = ""
    if nk == 8:
        extra = """         elsif I mod 8 = 4 then
            W (I) := Xor_Words (W (I - 8), Sub_Word (W (I - 1)));
"""
    return f"""   function Key_Schedule_{bits} (Key : in Key{nk * 4}) return Schedule{words}
   is
      W : Schedule{words};
   begin
      for I in 0 .. {nk - 1} loop
         for J in 0 .. 3 loop
            W (I) (J) := Key (4 * I + J);
         end loop;
      end loop;
      for I in {nk} .. {words - 1} loop
         if I mod {nk} = 0 then
            W (I) := Xor_Words (W (I - {nk}),
               Xor_Words (Sub_Word (Rot_Word (W (I - 1))),
                          Rcon_Word (I / {nk} - 1)));
{extra}         else
            W (I) := Xor_Words (W (I - {nk}), W (I - 1));
         end if;
      end loop;
      return W;
   end Key_Schedule_{bits};
"""


def _stage8_round_key(bits, nk, words, max_round, inverse=False):
    prefix = "Inv_" if inverse else ""
    schedule = f"{prefix}Key_Schedule_{bits}"
    return f"""   function {prefix}Round_Key_{bits} (Key : in Key{nk * 4}; R : in Integer) return Byte_Block
   --# pre R >= 0 and R <= {max_round};
   is
      W : Schedule{words};
      K : Byte_Block;
   begin
      W := {schedule} (Key);
      for Wd in 0 .. 3 loop
         for Bt in 0 .. 3 loop
            K (4 * Wd + Bt) := W (4 * R + Wd) (Bt);
         end loop;
      end loop;
      return K;
   end {prefix}Round_Key_{bits};
"""


def _stage8_inv_key_schedule(bits, nk, words, rounds):
    return f"""   function Inv_Key_Schedule_{bits} (Key : in Key{nk * 4}) return Schedule{words}
   is
      W : Schedule{words};
      V : Schedule{words};
   begin
      W := Key_Schedule_{bits} (Key);
      for I in 0 .. {rounds} loop
         for J in 0 .. 3 loop
            V (4 * I + J) := W (4 * ({rounds} - I) + J);
         end loop;
      end loop;
      for I in 4 .. {4 * rounds - 1} loop
         V (I) := Inv_Mix_Word (V (I));
      end loop;
      return V;
   end Inv_Key_Schedule_{bits};
"""


def _stage8_aes(bits, nk, rounds):
    return f"""   function AES{bits} (Key : in Key{nk * 4}; Input : in Byte_Block) return Byte_Block
   is
      S : Byte_Block;
      K0 : Byte_Block;
   begin
      K0 := Round_Key_{bits} (Key, 0);
      S := Add_Round_Key (Input, K0);
      for R in 1 .. {rounds - 1} loop
         S := Add_Round_Key (Mix_Columns (Shift_Rows (Sub_Bytes (S))),
                             Round_Key_{bits} (Key, R));
      end loop;
      return Add_Round_Key (Shift_Rows (Sub_Bytes (S)),
                            Round_Key_{bits} (Key, {rounds}));
   end AES{bits};

   function Inv_AES{bits} (Key : in Key{nk * 4}; Input : in Byte_Block) return Byte_Block
   is
      S : Byte_Block;
      K0 : Byte_Block;
   begin
      K0 := Inv_Round_Key_{bits} (Key, 0);
      S := Add_Round_Key (Input, K0);
      for R in 1 .. {rounds - 1} loop
         S := Add_Round_Key (Inv_Mix_Columns (Inv_Sub_Bytes (Inv_Shift_Rows (S))),
                             Inv_Round_Key_{bits} (Key, R));
      end loop;
      return Add_Round_Key (Inv_Sub_Bytes (Inv_Shift_Rows (S)),
                            Inv_Round_Key_{bits} (Key, {rounds}));
   end Inv_AES{bits};
"""


def _stage8_dispatch(name, prefix):
    branches = []
    for nk, bits in ((4, 128), (6, 192), (8, 256)):
        size = nk * 4
        branches.append(f"""      {"if" if nk == 4 else "elsif"} Nk = {nk} then
         for I in 0 .. {size - 1} loop
            K{size} (I) := Key (I);
         end loop;
         Output := {prefix}{bits} (K{size}, Input);""")
    joined = "\n".join(branches)
    return f"""   procedure {name} (Key : in Key_Bytes; Nk : in Key_Length;
                     Input : in Byte_Block; Output : out Byte_Block) is
      K16 : Key16;
      K24 : Key24;
      K32 : Key32;
   begin
{joined}
      end if;
   end {name};
"""


def key_type_decls() -> str:
    return """   type Key16 is array (0 .. 15) of Byte;
   type Key24 is array (0 .. 23) of Byte;
   type Key32 is array (0 .. 31) of Byte;
"""


def stage8_subprograms() -> str:
    parts = [_fn_helpers_as_functions()]
    for bits, nk, words, rounds in ((128, 4, 44, 10), (192, 6, 52, 12),
                                    (256, 8, 60, 14)):
        parts.append(_stage8_key_schedule(bits, nk, words))
        parts.append(_stage8_inv_key_schedule(bits, nk, words, rounds))
        parts.append(_stage8_round_key(bits, nk, words, rounds))
        parts.append(_stage8_round_key(bits, nk, words, rounds, inverse=True))
        parts.append(_stage8_aes(bits, nk, rounds))
    parts.append(_stage8_dispatch("Cipher", "AES"))
    parts.append(_stage8_dispatch("Inv_Cipher", "Inv_AES"))
    return "".join(parts)


def stage8_removals():
    """Subprograms superseded by the per-variant structure."""
    return ("Expand_Key", "Expand_Dec_Key", "Encrypt", "Decrypt")


# ---------------------------------------------------------------------------
# Block 12: straightforward inverse cipher (modifying the decryption key
# schedule, paper blocks 12-14)
# ---------------------------------------------------------------------------

def _stage12_inv_aes(bits, nk, rounds):
    return f"""   function Inv_AES{bits} (Key : in Key{nk * 4}; Input : in Byte_Block) return Byte_Block
   is
      S : Byte_Block;
   begin
      S := Add_Round_Key (Input, Round_Key_{bits} (Key, {rounds}));
      for R in reverse 1 .. {rounds - 1} loop
         S := Inv_Round (S, Round_Key_{bits} (Key, R));
      end loop;
      return Inv_Final_Round (S, Round_Key_{bits} (Key, 0));
   end Inv_AES{bits};
"""


def stage12_subprograms() -> str:
    inv_rounds = """   function Inv_Round (S : in Byte_Block; K : in Byte_Block) return Byte_Block
   is
   begin
      return Inv_Mix_Columns (Add_Round_Key (Inv_Shift_Rows (Inv_Sub_Bytes (S)), K));
   end Inv_Round;

   function Inv_Final_Round (S : in Byte_Block; K : in Byte_Block) return Byte_Block
   is
   begin
      return Add_Round_Key (Inv_Shift_Rows (Inv_Sub_Bytes (S)), K);
   end Inv_Final_Round;
"""
    return inv_rounds + "".join(
        _stage12_inv_aes(bits, nk, rounds)
        for bits, nk, rounds in ((128, 4, 10), (192, 6, 12), (256, 8, 14)))


def stage12_removals():
    return ("Inv_Key_Schedule_128", "Inv_Key_Schedule_192",
            "Inv_Key_Schedule_256", "Inv_Round_Key_128",
            "Inv_Round_Key_192", "Inv_Round_Key_256", "Inv_Mix_Word")


# ---------------------------------------------------------------------------
# Blocks 5/6/9: clone-extraction targets.  Shared by the manual pipeline
# (aes.blocks) and the automated planner's catalog (plan.catalog): the
# state operations named by FIPS-197 section 5.1 and the round
# compositions of its pseudo code, each as (source, minimum_occurrences).
# ---------------------------------------------------------------------------

def encrypt_state_procedures():
    """Block 5: the encryption-path state operations to extract."""
    return (
        ("""
   procedure Sub_Bytes (S : in Byte_State; R : out Byte_State) is
   begin
      for I in 0 .. 15 loop
         R (I) := Sbox (Integer (S (I)));
      end loop;
   end Sub_Bytes;
""", 2),
        ("""
   procedure Shift_Rows (S : in Byte_State; R : out Byte_State) is
   begin
      for I in 0 .. 15 loop
         R (I) := S (4 * ((I / 4 + I mod 4) mod 4) + I mod 4);
      end loop;
   end Shift_Rows;
""", 2),
        (f"""
   procedure Mix_Columns (S : in Byte_State; R : out Byte_State) is
   begin
{_mix_loop(_MIX_ROWS, "S", "R")}   end Mix_Columns;
""", 1),
        ("""
   procedure Add_Round_Key (S : in Byte_State; K : in Byte_State;
                            R : out Byte_State) is
   begin
      for I in 0 .. 15 loop
         R (I) := S (I) xor K (I);
      end loop;
   end Add_Round_Key;
""", 4),
        ("""
   procedure Round_Key_From (W : in Schedule60; R : in Integer;
                             K : out Byte_State) is
   begin
      for I in 0 .. 15 loop
         K (I) := W (4 * R + I / 4) (I mod 4);
      end loop;
   end Round_Key_From;
""", 4),
    )


def decrypt_state_procedures():
    """Block 6: the decryption-path state operations to extract."""
    return (
        ("""
   procedure Inv_Sub_Bytes (S : in Byte_State; R : out Byte_State) is
   begin
      for I in 0 .. 15 loop
         R (I) := Inv_Sbox (Integer (S (I)));
      end loop;
   end Inv_Sub_Bytes;
""", 2),
        ("""
   procedure Inv_Shift_Rows (S : in Byte_State; R : out Byte_State) is
   begin
      for I in 0 .. 15 loop
         R (I) := S (4 * ((I / 4 + 4 - I mod 4) mod 4) + I mod 4);
      end loop;
   end Inv_Shift_Rows;
""", 2),
        (f"""
   procedure Inv_Mix_Columns (S : in Byte_State; R : out Byte_State) is
   begin
{_mix_loop(_INV_MIX_ROWS, "S", "R")}   end Inv_Mix_Columns;
""", 1),
    )


def round_composition_functions():
    """Block 9: the round compositions of the FIPS-197 pseudo code."""
    return (
        ("""
   function Round (S : in Byte_Block; K : in Byte_Block) return Byte_Block is
   begin
      return Add_Round_Key (Mix_Columns (Shift_Rows (Sub_Bytes (S))), K);
   end Round;
""", 3),
        ("""
   function Final_Round (S : in Byte_Block; K : in Byte_Block) return Byte_Block is
   begin
      return Add_Round_Key (Shift_Rows (Sub_Bytes (S)), K);
   end Final_Round;
""", 3),
        ("""
   function Eq_Inv_Round (S : in Byte_Block; K : in Byte_Block) return Byte_Block is
   begin
      return Add_Round_Key (Inv_Mix_Columns (Inv_Sub_Bytes (Inv_Shift_Rows (S))), K);
   end Eq_Inv_Round;
""", 3),
        ("""
   function Eq_Inv_Final_Round (S : in Byte_Block; K : in Byte_Block) return Byte_Block is
   begin
      return Add_Round_Key (Inv_Sub_Bytes (Inv_Shift_Rows (S)), K);
   end Eq_Inv_Final_Round;
""", 3),
    )
