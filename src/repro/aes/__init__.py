"""The AES case study (paper section 6): FIPS-197 theory, the optimized
T-table implementation, the 14-block refactoring pipeline, annotations and
proof scripts."""

from . import gf
from .annotations import annotated_package, build_annotated
from .blocks import AESPipeline, BLOCK_TITLES, cipher_sampler, \
    transformation_blocks
from .fips197 import fips197_source, fips197_theory, validate_against_vectors
from .optimized import optimized_package, optimized_source, validate_optimized
from .proof_scripts import aes_proof_scripts
from .refactored import refactored_package, refactored_source, \
    validate_refactored
from .vectors import APPENDIX_B, FIPS197_VECTORS, AESVector

__all__ = [
    "gf", "fips197_theory", "fips197_source", "validate_against_vectors",
    "optimized_package", "optimized_source", "validate_optimized",
    "refactored_package", "refactored_source", "validate_refactored",
    "annotated_package", "build_annotated", "aes_proof_scripts",
    "AESPipeline", "transformation_blocks", "cipher_sampler", "BLOCK_TITLES",
    "AESVector", "FIPS197_VECTORS", "APPENDIX_B",
]
