"""FIPS-197 test vectors.

Appendix A key expansion inputs, Appendix B worked example, and the
Appendix C example vectors for all three key lengths.  These are the
ground truth every AES artifact in the reproduction is validated against:
the MiniPVS specification, the optimized MiniAda implementation, every
refactored intermediate, and the final refactored program.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

__all__ = ["AESVector", "FIPS197_VECTORS", "APPENDIX_B"]


def _bytes(hex_string: str) -> Tuple[int, ...]:
    clean = hex_string.replace(" ", "").replace("\n", "")
    return tuple(int(clean[i:i + 2], 16) for i in range(0, len(clean), 2))


@dataclass(frozen=True)
class AESVector:
    name: str
    key: Tuple[int, ...]
    plaintext: Tuple[int, ...]
    ciphertext: Tuple[int, ...]

    @property
    def nk(self) -> int:
        return len(self.key) // 4

    @property
    def nr(self) -> int:
        return self.nk + 6


#: FIPS-197 Appendix C example vectors (PLAINTEXT = 00112233...ff).
FIPS197_VECTORS: List[AESVector] = [
    AESVector(
        name="AES-128 (FIPS-197 C.1)",
        key=_bytes("000102030405060708090a0b0c0d0e0f"),
        plaintext=_bytes("00112233445566778899aabbccddeeff"),
        ciphertext=_bytes("69c4e0d86a7b0430d8cdb78070b4c55a"),
    ),
    AESVector(
        name="AES-192 (FIPS-197 C.2)",
        key=_bytes("000102030405060708090a0b0c0d0e0f1011121314151617"),
        plaintext=_bytes("00112233445566778899aabbccddeeff"),
        ciphertext=_bytes("dda97ca4864cdfe06eaf70a0ec0d7191"),
    ),
    AESVector(
        name="AES-256 (FIPS-197 C.3)",
        key=_bytes("000102030405060708090a0b0c0d0e0f"
                   "101112131415161718191a1b1c1d1e1f"),
        plaintext=_bytes("00112233445566778899aabbccddeeff"),
        ciphertext=_bytes("8ea2b7ca516745bfeafc49904b496089"),
    ),
]

#: FIPS-197 Appendix B worked cipher example (AES-128).
APPENDIX_B = AESVector(
    name="AES-128 (FIPS-197 appendix B)",
    key=_bytes("2b7e151628aed2a6abf7158809cf4f3c"),
    plaintext=_bytes("3243f6a8885a308d313198a2e0370734"),
    ciphertext=_bytes("3925841d02dc09fbdc118597196a0b32"),
)
