"""Echo: the paper's verification approach, end to end."""

from .pipeline import EchoVerifier, verify_aes
from .process import MetricsGate, RefactoringProcess
from .results import EchoResult

__all__ = ["EchoVerifier", "verify_aes", "EchoResult", "MetricsGate",
           "RefactoringProcess"]
