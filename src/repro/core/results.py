"""Typed result records for the full Echo verification run."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..exec import ExecStats
from ..extract import MatchRatio
from ..implication import ImplicationResult
from ..prover import ImplementationProofResult
from ..refactor import Application

__all__ = ["EchoResult"]


@dataclass
class EchoResult:
    """Everything a full Echo run produces: the verification argument's
    three legs (per-transformation preservation theorems, implementation
    proof, implication proof) plus the extracted artifacts."""

    applications: List[Application]
    implementation: ImplementationProofResult
    implication: ImplicationResult
    match: MatchRatio
    extracted_lines: int
    refactored_lines: int
    #: aggregate obligation-execution statistics (scheduling, caching,
    #: discharge times) for the run; None for hand-built results.
    exec_stats: Optional[ExecStats] = None

    @property
    def refactoring_preserved(self) -> bool:
        return all(a.preserved for a in self.applications)

    @property
    def verified(self) -> bool:
        """The complete Echo verification argument (section 3): every
        transformation preserved semantics, the code implements its
        low-level specification, and the extracted specification implies
        the original one."""
        return (self.refactoring_preserved
                and self.implementation.all_proved
                and self.implication.holds)

    def summary(self) -> str:
        impl = self.implementation
        lines = [
            f"transformations applied      {len(self.applications)} "
            f"(all preserved: {self.refactoring_preserved})",
            f"implementation proof         {impl.total_vcs} VCs, "
            f"{impl.auto_percent:.1f}% automatic, "
            f"{impl.interactive_discharged} interactive, "
            f"{len(impl.undischarged)} undischarged",
            f"spec structure match         {self.match.percent:.1f}%",
            f"implication proof            {self.implication.lemma_count} "
            f"lemmas, holds: {self.implication.holds} "
            f"(proof strength: {self.implication.is_proof})",
        ]
        if self.exec_stats is not None and self.exec_stats.total:
            stats = self.exec_stats
            lines.append(
                f"proof obligations            {stats.total} "
                f"({sum(stats.cached.values())} cached, hit rate "
                f"{100.0 * stats.hit_rate:.1f}%)")
            faults = {name: count for name, count in stats.failures.items()
                      if count}
            if faults:
                # Surface fault-tolerance activity: a verdict reached
                # through crash recovery or a degraded backend is still a
                # verdict, but the operator should see it happened.
                lines.append(
                    f"execution faults             "
                    + ", ".join(f"{name}: {count}"
                                for name, count in sorted(faults.items())))
        lines.append(f"VERIFIED: {self.verified}")
        return "\n".join(lines)
