"""Typed result records for the full Echo verification run."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..extract import MatchRatio
from ..implication import ImplicationResult
from ..prover import ImplementationProofResult
from ..refactor import Application

__all__ = ["EchoResult"]


@dataclass
class EchoResult:
    """Everything a full Echo run produces: the verification argument's
    three legs (per-transformation preservation theorems, implementation
    proof, implication proof) plus the extracted artifacts."""

    applications: List[Application]
    implementation: ImplementationProofResult
    implication: ImplicationResult
    match: MatchRatio
    extracted_lines: int
    refactored_lines: int

    @property
    def refactoring_preserved(self) -> bool:
        return all(a.preserved for a in self.applications)

    @property
    def verified(self) -> bool:
        """The complete Echo verification argument (section 3): every
        transformation preserved semantics, the code implements its
        low-level specification, and the extracted specification implies
        the original one."""
        return (self.refactoring_preserved
                and self.implementation.all_proved
                and self.implication.holds)

    def summary(self) -> str:
        impl = self.implementation
        return "\n".join([
            f"transformations applied      {len(self.applications)} "
            f"(all preserved: {self.refactoring_preserved})",
            f"implementation proof         {impl.total_vcs} VCs, "
            f"{impl.auto_percent:.1f}% automatic, "
            f"{impl.interactive_discharged} interactive, "
            f"{len(impl.undischarged)} undischarged",
            f"spec structure match         {self.match.percent:.1f}%",
            f"implication proof            {self.implication.lemma_count} "
            f"lemmas, holds: {self.implication.holds} "
            f"(proof strength: {self.implication.is_proof})",
            f"VERIFIED: {self.verified}",
        ])
