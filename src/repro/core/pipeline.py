"""The Echo verifier: the paper's end-to-end process (section 3).

``EchoVerifier`` binds the pieces together for an arbitrary MiniAda
program + MiniPVS specification pair:

1. apply verification-refactoring transformations (each checked by a
   semantics-preservation theorem over the observable interface);
2. attach the low-level specification (annotations) and run the
   implementation proof;
3. extract the high-level specification (reverse synthesis);
4. prove the implication theorem against the original specification.

``verify_aes()`` instantiates the whole thing for the AES case study.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence

from ..exec.config import ExecConfig, coerce_exec_config, \
    reject_legacy_exec_kwargs
from ..extract import extract_specification, match_ratio
from ..implication import prove_implication
from ..lang import TypedPackage, analyze, ast, print_package
from ..prover import ImplementationProof, ProofScript
from ..refactor import RefactoringEngine, Transformation
from ..spec import ast as sast
from ..spec import spec_line_count
from .results import EchoResult

__all__ = ["EchoVerifier", "verify_aes"]


class EchoVerifier:
    """Drives the Echo process for one program against one specification."""

    def __init__(self, package: ast.Package, specification: sast.Theory,
                 observables: Sequence[str],
                 samplers: Optional[dict] = None,
                 check: str = "full", trials: int = 24,
                 exec: Optional["ExecConfig"] = None, **legacy):
        """``exec`` configures the obligation execution layer
        (:mod:`repro.exec`) -- backend, job count, cache, telemetry,
        timeouts -- for all three proof legs (the PR-3 era bare
        ``jobs``/``cache``/``telemetry`` shims are gone and raise
        ``TypeError``).  By default each verifier gets its own
        :class:`Telemetry`, whose aggregate statistics land on the
        resulting :class:`~repro.core.results.EchoResult`."""
        from ..exec import Telemetry
        reject_legacy_exec_kwargs("EchoVerifier", legacy)
        config = coerce_exec_config(exec, owner="EchoVerifier")
        if config.telemetry is None:
            config = config.with_telemetry(Telemetry())
        self.exec = config
        self.telemetry = config.telemetry
        self.engine = RefactoringEngine(package, observables=observables,
                                        check=check, trials=trials,
                                        samplers=samplers, exec=config)
        self.specification = specification
        self.applications = []

    def refactor(self, transformations: Sequence[Transformation]):
        """Apply a series of transformations (the figure-1 loop body)."""
        for transformation in transformations:
            self.applications.append(self.engine.apply(transformation))
        return self.applications

    def verify(self,
               annotate: Optional[Callable[[str], TypedPackage]] = None,
               scripts: Optional[Dict[str, Sequence[ProofScript]]] = None,
               ) -> EchoResult:
        """Run the two Echo proofs on the current (refactored) program.

        ``annotate`` maps the refactored source text to an annotated
        TypedPackage (the developer writing the low-level specification);
        without it the program is verified with its in-source annotations
        only."""
        source = print_package(self.engine.package)
        typed = annotate(source) if annotate is not None \
            else self.engine.typed

        implementation = ImplementationProof(
            typed, scripts=scripts, exec=self.exec).run()

        extraction = extract_specification(typed)
        match = match_ratio(self.specification, extraction.theory)
        implication = prove_implication(self.specification,
                                        extraction.theory, exec=self.exec)

        from ..metrics import element_metrics
        return EchoResult(
            applications=list(self.applications),
            implementation=implementation,
            implication=implication,
            match=match,
            extracted_lines=spec_line_count(extraction.theory),
            refactored_lines=element_metrics(typed.package).lines_of_code,
            exec_stats=self.telemetry.stats(),
        )


def verify_aes(check: str = "differential", trials: int = 6,
               exec: Optional["ExecConfig"] = None,
               **legacy) -> EchoResult:
    """The complete AES verification: optimized implementation, 14
    transformation blocks, annotation, implementation proof, extraction,
    implication against FIPS-197.

    ``exec=ExecConfig(jobs=N, backend='process')`` fans proof obligations
    out over worker processes (``backend='thread'`` for a thread pool);
    the default is the guaranteed-deterministic serial path.  An
    ``ExecConfig`` carrying a shared :class:`~repro.exec.ResultCache`
    across calls makes repeat verification incremental (unchanged
    obligations replay from cache).  ``exec=ExecConfig(backend='remote',
    remote_workers=(...,))`` shards them across worker hosts (DESIGN.md
    §16); the PR-3 era bare ``jobs``/``cache``/``telemetry`` shims are
    gone and raise ``TypeError``."""
    from ..aes.annotations import build_annotated
    from ..aes.blocks import AESPipeline, transformation_blocks, \
        cipher_sampler
    from ..aes.fips197 import fips197_theory
    from ..aes.optimized import optimized_source
    from ..aes.proof_scripts import aes_proof_scripts
    from ..lang import parse_package

    reject_legacy_exec_kwargs("verify_aes", legacy)
    config = coerce_exec_config(exec, owner="verify_aes")
    verifier = EchoVerifier(
        parse_package(optimized_source()),
        fips197_theory(),
        observables=["Cipher", "Inv_Cipher"],
        samplers={"Cipher": cipher_sampler, "Inv_Cipher": cipher_sampler},
        check=check, trials=trials, exec=config,
    )
    for _, transformations in transformation_blocks():
        verifier.refactor(transformations)
    return verifier.verify(
        annotate=lambda source: build_annotated(source),
        scripts=aes_proof_scripts(),
    )
