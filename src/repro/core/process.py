"""The figure-1 refactoring process loop.

"A semantics-preserving transformation from the library is selected by the
user (or suggested automatically), and the transformer then checks the
applicability ... When all of the selected transformations have been
applied, a metrics analyzer collects and analyzes the code properties ...
If the metric results are not acceptable, or if they are acceptable but
later verification proofs cannot be established, the process goes back to
refactoring."

``RefactoringProcess`` mechanizes that loop: a metrics gate decides
whether to continue, and the per-block measurement history is what the
user reviews (the paper's figure 2 is exactly such a history).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence

from ..extract import extract_skeleton, match_ratio
from ..lang import analyze, with_true_postconditions
from ..metrics import MetricsReport, analyze_metrics, vc_metrics
from ..refactor import RefactoringEngine, Transformation
from ..spec import ast as sast
from ..vcgen import Examiner, ExaminerLimits

__all__ = ["MetricsGate", "RefactoringProcess"]


@dataclass
class MetricsGate:
    """Acceptance thresholds for the metric review step.

    ``None`` disables a criterion.  The defaults encode the paper's
    heuristics: keep refactoring until the analysis is feasible, the
    structure matches the specification well, and times have stabilized.
    """

    require_feasible: bool = True
    max_average_mccabe: Optional[float] = None
    min_match_percent: Optional[float] = None
    max_simulated_seconds: Optional[float] = None

    def accepts(self, report: MetricsReport) -> bool:
        if self.require_feasible and report.vcs is not None \
                and not report.vcs.feasible:
            return False
        if self.max_average_mccabe is not None and \
                report.complexity.average_mccabe > self.max_average_mccabe:
            return False
        if self.min_match_percent is not None and \
                (report.match_ratio is None
                 or report.match_ratio * 100 < self.min_match_percent):
            return False
        if self.max_simulated_seconds is not None and \
                report.vcs is not None and \
                report.vcs.simulated_seconds > self.max_simulated_seconds:
            return False
        return True


class RefactoringProcess:
    """Applies transformation groups until the metrics gate accepts."""

    def __init__(self, engine: RefactoringEngine,
                 specification: sast.Theory,
                 gate: Optional[MetricsGate] = None,
                 limits: Optional[ExaminerLimits] = None):
        self.engine = engine
        self.specification = specification
        self.gate = gate or MetricsGate()
        self.limits = limits or ExaminerLimits()
        self.history: List[MetricsReport] = []

    def measure(self, label: str = "") -> MetricsReport:
        typed = self.engine.typed
        stripped = analyze(with_true_postconditions(typed.package))
        report = Examiner(stripped, limits=self.limits).examine()
        skeleton = extract_skeleton(typed)
        ratio = match_ratio(self.specification, skeleton)
        metrics = analyze_metrics(
            typed.package, label=label, vcs=vc_metrics(report),
            match_ratio=ratio.ratio)
        self.history.append(metrics)
        return metrics

    def step(self, transformations: Sequence[Transformation],
             label: str = "") -> bool:
        """Apply one group; returns True when the gate accepts the result
        (the user may stop refactoring and attempt the proofs)."""
        for transformation in transformations:
            self.engine.apply(transformation)
        return self.gate.accepts(self.measure(label=label))
