"""Randomized defect seeding.

The paper seeded defects "by randomly choosing a line number and performing
a change".  The curated set (:mod:`repro.defects.curated`) pins the
published per-stage counts; this module provides the randomized version so
the property tests can show detection does not depend on hand-picked
sites: a random mutation of the refactored AES either changes observable
behaviour (and the implication proof refutes a lemma) or is benign.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Optional, Tuple

from ..lang import TypedPackage, analyze, ast
from ..lang.errors import MiniAdaError

__all__ = ["SeededMutation", "random_mutation", "mutation_sites"]


@dataclass(frozen=True)
class SeededMutation:
    kind: str
    subprogram: str
    description: str
    package: ast.Package


def _swap_binop(op: str) -> Optional[str]:
    swaps = {"+": "-", "-": "+", "xor": "or", "<": "<=", "<=": "<",
             "mod": "/"}
    return swaps.get(op)


def mutation_sites(typed: TypedPackage) -> List[Tuple[str, str, object]]:
    """(kind, subprogram, node) triples the seeder can target."""
    sites = []
    for sp in typed.package.subprograms:
        for node in ast.walk(sp):
            if isinstance(node, ast.IntLit) and 0 < node.value < 255:
                sites.append(("numeric", sp.name, node))
            elif isinstance(node, ast.BinOp) and _swap_binop(node.op):
                sites.append(("operator", sp.name, node))
            elif isinstance(node, ast.ArrayRef) and \
                    isinstance(node.index, ast.Name):
                sites.append(("index", sp.name, node))
    return sites


def random_mutation(typed: TypedPackage, rng: random.Random,
                    max_attempts: int = 50) -> Optional[SeededMutation]:
    """One random, type-correct mutation of the package (or None if no
    attempt produced a type-correct program)."""
    sites = mutation_sites(typed)
    for _ in range(max_attempts):
        kind, sp_name, target = rng.choice(sites)
        replaced = {"done": False}

        def mutate(node):
            if node is target and not replaced["done"]:
                replaced["done"] = True
                if kind == "numeric":
                    return ast.IntLit(value=node.value ^ 1)
                if kind == "operator":
                    return ast.BinOp(op=_swap_binop(node.op),
                                     left=node.left, right=node.right)
                if kind == "index":
                    bumped = ast.BinOp(op="+", left=node.index,
                                       right=ast.IntLit(value=1))
                    return ast.ArrayRef(base=node.base, index=bumped)
            return node

        sp = typed.package.subprogram(sp_name)
        new_sp = ast.transform_bottom_up(sp, mutate)
        if not replaced["done"] or new_sp == sp:
            continue
        package = typed.package.replace_subprogram(sp_name, new_sp)
        try:
            analyze(package)
        except MiniAdaError:
            continue
        return SeededMutation(
            kind=kind, subprogram=sp_name,
            description=f"{kind} mutation in {sp_name}",
            package=package)
    return None
