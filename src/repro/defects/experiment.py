"""The seeded-defect experiment (paper section 7, tables 2 and 3).

For each defect and each annotation setup, the full Echo process runs and
the first stage that exposes the defect is recorded:

``refactoring``     a mechanical transformation's applicability check or
                    per-application preservation proof fails;
``implementation``  the SPARK-style implementation proof leaves VCs
                    undischarged (annotation mismatch, or an
                    exception-freedom failure, which catches out-of-bounds
                    defects in *both* setups);
``implication``     an implication lemma is refuted;
``not caught``      the benign defect.

Setup 1: the annotations describe the defective code's actual behaviour
(misunderstood specification), so functional defects slip through the
implementation proof and surface in the implication proof.  Setup 2: the
annotations describe the intended behaviour, so the implementation proof
catches them first.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..aes.annotations import build_annotated
from ..aes.blocks import transformation_blocks
from ..aes.fips197 import fips197_theory
from ..aes.optimized import optimized_source
from ..aes.refactored import refactored_source
from ..extract import extract_specification
from ..implication import prove_implication
from ..lang import analyze, parse_package
from ..lang.errors import MiniAdaError
from ..prover import ImplementationProof
from ..refactor import RefactoringEngine, TransformationError
from .curated import curated_defects
from .types import Defect

__all__ = ["DefectOutcome", "run_defect", "run_experiment", "stage_table",
           "STAGES"]

STAGES = ("refactoring", "implementation", "implication", "not caught")


@dataclass(frozen=True)
class DefectOutcome:
    defect: Defect
    setup: int
    stage: str
    detail: str = ""


def _patched(text: str, patches: Sequence[Tuple[str, str]]) -> str:
    for old, new in patches:
        if old not in text:
            raise ValueError(f"defect patch site not found: {old[:60]!r}")
        text = text.replace(old, new, 1)
    return text


def _refactoring_catches(defect: Defect) -> Optional[str]:
    """Run the mechanical refactoring blocks (1 and 2) on the defective
    optimized program; returns the failure detail if a transformation's
    applicability check rejects it."""
    if not defect.optimized_patch:
        return None
    source = _patched(optimized_source(), defect.optimized_patch)
    try:
        engine = RefactoringEngine(parse_package(source),
                                   observables=["Cipher", "Inv_Cipher"],
                                   check="none")
    except MiniAdaError as exc:
        return f"defective program rejected by the front end: {exc}"
    for index, transformations in transformation_blocks():
        if index > 2:
            break
        for transformation in transformations:
            try:
                engine.apply(transformation)
            except TransformationError as exc:
                return str(exc)
    return None


def run_defect(defect: Defect, setup: int) -> DefectOutcome:
    """Run the Echo pipeline on one seeded defect under one setup."""
    assert setup in (1, 2)

    detail = _refactoring_catches(defect)
    if detail is not None:
        return DefectOutcome(defect=defect, setup=setup, stage="refactoring",
                             detail=detail)

    # The defect survives refactoring; annotate and run the implementation
    # proof.  Setup 1 annotates the *actual* behaviour (matching mutations
    # applied to the annotation formulas); setup 2 keeps the intended ones.
    code = _patched(refactored_source(), defect.refactored_patch) \
        if defect.refactored_patch else refactored_source()
    annotation_patches = defect.annotation_patch if setup == 1 else ()
    try:
        typed = build_annotated(code, annotation_patches)
    except MiniAdaError as exc:
        return DefectOutcome(defect=defect, setup=setup,
                             stage="implementation",
                             detail=f"annotated program rejected: {exc}")
    if defect.subprograms:
        proof = ImplementationProof(typed)
        result = proof.run(list(defect.subprograms))
        if not result.feasible or result.undischarged:
            kinds = result.undischarged_kinds()
            return DefectOutcome(
                defect=defect, setup=setup, stage="implementation",
                detail=f"undischarged VCs: {kinds}")

    # Implication proof over the extracted specification.
    extracted = extract_specification(typed).theory
    implication = prove_implication(fips197_theory(), extracted)
    if not implication.holds:
        failed = ", ".join(o.lemma.name for o in implication.failed)
        return DefectOutcome(defect=defect, setup=setup, stage="implication",
                             detail=f"refuted lemmas: {failed}")

    return DefectOutcome(defect=defect, setup=setup, stage="not caught",
                         detail="benign" if defect.benign else "NOT DETECTED")


def run_experiment(defects: Optional[Sequence[Defect]] = None,
                   setups: Sequence[int] = (1, 2),
                   ) -> Dict[int, List[DefectOutcome]]:
    """Tables 2 and 3: outcomes per setup."""
    defects = list(defects) if defects is not None else curated_defects()
    outcomes: Dict[int, List[DefectOutcome]] = {}
    # Refactoring detection is setup-independent; run_defect handles the
    # caching implicitly through the deterministic sources.
    for setup in setups:
        outcomes[setup] = [run_defect(defect, setup) for defect in defects]
    return outcomes


def stage_table(outcomes: List[DefectOutcome]) -> Dict[str, int]:
    """Per-stage caught/left counts in the paper's table 2/3 shape."""
    remaining = len(outcomes)
    rows = {}
    for stage in ("refactoring", "implementation", "implication"):
        caught = sum(1 for o in outcomes if o.stage == stage)
        remaining -= caught
        rows[stage] = caught
    rows["left"] = remaining
    return rows
