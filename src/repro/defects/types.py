"""Defect model for the seeded-defect experiment (paper section 7).

A defect is a small change to the implementation in one of the paper's
five categories: (a) a numeric value, (b) an array index, (c) an operator,
(d) a variable or table reference, (e) a statement or function call.

Each defect carries the textual mutation for the artifact(s) it lands in:

``optimized_patch``   mutation of the *optimized* source -- the defects the
                      refactoring stage can catch (a broken repetition
                      pattern makes re-rolling inapplicable; a corrupted
                      table entry fails the reverse-table-lookup proof);
``refactored_patch``  mutation of the refactored source (defects the
                      refactoring preserves);
``annotation_patch``  the matching mutation of the annotation formulas,
                      applied only in setup 1 ("the annotations
                      corresponded to the functional behavior of the
                      code").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

__all__ = ["DEFECT_KINDS", "Defect"]

DEFECT_KINDS = ("numeric", "index", "operator", "reference", "statement")


@dataclass(frozen=True)
class Defect:
    name: str
    kind: str
    description: str
    #: (old, new) pairs applied to the optimized source, or () when the
    #: defect site is preserved verbatim by the refactoring.
    optimized_patch: Tuple[Tuple[str, str], ...] = ()
    #: (old, new) pairs applied to the refactored source.
    refactored_patch: Tuple[Tuple[str, str], ...] = ()
    #: (old, new) pairs applied to annotation formulas in setup 1.
    annotation_patch: Tuple[Tuple[str, str], ...] = ()
    #: subprograms whose proofs the defect can influence (implementation
    #: proof is run on these).
    subprograms: Tuple[str, ...] = ()
    benign: bool = False

    def __post_init__(self):
        assert self.kind in DEFECT_KINDS, self.kind
