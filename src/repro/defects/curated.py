"""The curated 15-defect set (3 per category) for tables 2 and 3.

The sites mirror the paper's experiment: four defects land in optimized
code whose regular structure the refactoring's mechanical pattern matching
depends on (one corrupts a T-table entry, failing the reverse-table-lookup
proof; three corrupt a single unrolled round, making re-rolling
inapplicable); two produce out-of-bounds indices (caught by exception
freedom in the implementation proof regardless of annotation setup, as in
the paper); one is the paper's benign defect (a key array sized for the
maximum key length whose extra entries are never read); the rest corrupt
functional behaviour that only the implication proof (setup 1) or the
annotation mismatch (setup 2) can expose.
"""

from __future__ import annotations

from typing import List

from ..aes import gf
from .types import Defect

__all__ = ["curated_defects"]


def _te0_entry_patch():
    value = gf.te_tables()[0][100]
    old = f"16#{value:08X}#"
    new = f"16#{value ^ 0x40:08X}#"
    return ((old, new),)


def curated_defects() -> List[Defect]:
    return [
        # -- caught during verification refactoring --------------------------
        Defect(
            name="D01-numeric-table-entry",
            kind="numeric",
            description="corrupted Te0[100]: the reverse-table-lookup proof "
                        "(table = explicit computation, all 256 points) fails",
            optimized_patch=_te0_entry_patch(),
        ),
        Defect(
            name="D02-index-round-key",
            kind="index",
            description="round 5 of the unrolled encryption reads RK(21) "
                        "instead of RK(20): the literal sequence is no "
                        "longer affine, re-rolling is inapplicable",
            optimized_patch=(
                ("xor Te3 (Integer (S3 and 255)) xor RK (20);",
                 "xor Te3 (Integer (S3 and 255)) xor RK (21);"),),
        ),
        Defect(
            name="D03-operator-shift",
            kind="operator",
            description="one unrolled round shifts left instead of right: "
                        "groups no longer anti-unify",
            optimized_patch=(
                ("T1 := Te0 (Integer (Shift_Right (S1, 24))) xor "
                 "Te1 (Integer (Shift_Right (S2, 16) and 255)) xor "
                 "Te2 (Integer (Shift_Right (S3, 8) and 255)) xor "
                 "Te3 (Integer (S0 and 255)) xor RK (29);",
                 "T1 := Te0 (Integer (Shift_Left (S1, 24))) xor "
                 "Te1 (Integer (Shift_Right (S2, 16) and 255)) xor "
                 "Te2 (Integer (Shift_Right (S3, 8) and 255)) xor "
                 "Te3 (Integer (S0 and 255)) xor RK (29);"),),
        ),
        Defect(
            name="D04-reference-state-word",
            kind="reference",
            description="round 4 reads state word S1 where S0 belongs: the "
                        "unrolled rounds no longer share a template",
            optimized_patch=(
                ("Te2 (Integer (Shift_Right (S0, 8) and 255)) xor "
                 "Te3 (Integer (S1 and 255)) xor RK (18);",
                 "Te2 (Integer (Shift_Right (S1, 8) and 255)) xor "
                 "Te3 (Integer (S1 and 255)) xor RK (18);"),),
        ),

        # -- caught by exception freedom in the implementation proof ---------
        Defect(
            name="D05-index-round-key-offset",
            kind="index",
            description="Round_Key_128 gathers from word 4R + I/4 + 1: out "
                        "of bounds at R = 10",
            refactored_patch=(
                ("K (I) := W (4 * R + I / 4) (I mod 4);",
                 "K (I) := W (4 * R + I / 4 + 1) (I mod 4);"),),
            annotation_patch=(
                ("(4 * R + Kb / 4) (Kb mod 4)",
                 "(4 * R + Kb / 4 + 1) (Kb mod 4)"),
                ("W (4 * R + Kb / 4) (Kb mod 4)",
                 "W (4 * R + Kb / 4 + 1) (Kb mod 4)"),),
            subprograms=("Round_Key_128",),
        ),
        Defect(
            name="D06-index-shift-rows",
            kind="index",
            description="Shift_Rows source index off by one: out of bounds "
                        "at the last column",
            refactored_patch=(
                ("R (I) := S (4 * ((I / 4 + I mod 4) mod 4) + I mod 4);",
                 "R (I) := S (4 * ((I / 4 + I mod 4) mod 4) + I mod 4 + 1);"),),
            annotation_patch=(
                ("S (4 * ((Kb / 4 + Kb mod 4) mod 4) + Kb mod 4)",
                 "S (4 * ((Kb / 4 + Kb mod 4) mod 4) + Kb mod 4 + 1)"),),
            subprograms=("Shift_Rows",),
        ),

        # -- functional defects: implication proof (setup 1) ------------------
        Defect(
            name="D07-numeric-xtime-polynomial",
            kind="numeric",
            description="X_Time reduces by the wrong polynomial (xor 29)",
            refactored_patch=(("return (B + B) xor 27;",
                               "return (B + B) xor 29;"),),
            annotation_patch=(("((B + B) xor 27)", "((B + B) xor 29)"),),
            subprograms=("X_Time",),
        ),
        Defect(
            name="D08-numeric-rcon-fill",
            kind="numeric",
            description="Rcon_Word fills the constant word's tail bytes "
                        "with 1 instead of 0",
            refactored_patch=(("W (I) := 0;", "W (I) := 1;"),),
            annotation_patch=(("(Result (Kb) = 0)", "(Result (Kb) = 1)"),
                              ("(W (Kb) = 0)", "(W (Kb) = 1)"),),
            subprograms=("Rcon_Word",),
        ),
        Defect(
            name="D09-operator-add-round-key",
            kind="operator",
            description="Add_Round_Key uses 'or' instead of 'xor'",
            refactored_patch=(("R (I) := S (I) xor K (I);",
                               "R (I) := S (I) or K (I);"),),
            annotation_patch=(("(S (Kb) xor K (Kb))", "(S (Kb) or K (Kb))"),),
            subprograms=("Add_Round_Key",),
        ),
        Defect(
            name="D10-operator-inv-shift-rows",
            kind="operator",
            description="Inv_Shift_Rows offsets rows with 'I / 4' in place "
                        "of 'I mod 4' (stays in bounds, wrong permutation)",
            refactored_patch=(
                ("R (I) := S (4 * ((I / 4 + 4 - I mod 4) mod 4) + I mod 4);",
                 "R (I) := S (4 * ((I / 4 + 4 - I / 4) mod 4) + I mod 4);"),),
            annotation_patch=(
                ("S (4 * ((Kb / 4 + 4 - Kb mod 4) mod 4) + Kb mod 4)",
                 "S (4 * ((Kb / 4 + 4 - Kb / 4) mod 4) + Kb mod 4)"),),
            subprograms=("Inv_Shift_Rows",),
        ),
        Defect(
            name="D11-reference-sbox",
            kind="reference",
            description="Sub_Bytes substitutes through the inverse S-box",
            refactored_patch=(("R (I) := Sbox (Integer (S (I)));",
                               "R (I) := Inv_Sbox (Integer (S (I)));"),),
            annotation_patch=(("= (Sbox (Integer (S (Kb))))",
                               "= (Inv_Sbox (Integer (S (Kb))))"),),
            subprograms=("Sub_Bytes",),
        ),
        Defect(
            name="D12-reference-xor-words",
            kind="reference",
            description="Xor_Words reads its first operand twice",
            refactored_patch=(("R (I) := A (I) xor B (I);",
                               "R (I) := A (I) xor A (I);"),),
            annotation_patch=(("(A (Kb) xor B (Kb))", "(A (Kb) xor A (Kb))"),),
            subprograms=("Xor_Words",),
        ),
        Defect(
            name="D13-statement-round-order",
            kind="statement",
            description="Round applies MixColumns after the key addition",
            refactored_patch=(
                ("return Add_Round_Key (Mix_Columns (Shift_Rows "
                 "(Sub_Bytes (S))), K);",
                 "return Mix_Columns (Add_Round_Key (Shift_Rows "
                 "(Sub_Bytes (S)), K));"),),
            annotation_patch=(
                ("Add_Round_Key (Mix_Columns (Shift_Rows (Sub_Bytes (S))), K)",
                 "Mix_Columns (Add_Round_Key (Shift_Rows (Sub_Bytes (S)), K))"),),
            subprograms=("Round",),
        ),
        Defect(
            name="D14-statement-inv-round-order",
            kind="statement",
            description="Inv_Round adds the round key after InvMixColumns",
            refactored_patch=(
                ("return Inv_Mix_Columns (Add_Round_Key (Inv_Shift_Rows "
                 "(Inv_Sub_Bytes (S)), K));",
                 "return Add_Round_Key (Inv_Mix_Columns (Inv_Shift_Rows "
                 "(Inv_Sub_Bytes (S))), K);"),),
            annotation_patch=(
                ("Inv_Mix_Columns (Add_Round_Key (Inv_Shift_Rows "
                 "(Inv_Sub_Bytes (S)), K))",
                 "Add_Round_Key (Inv_Mix_Columns (Inv_Shift_Rows "
                 "(Inv_Sub_Bytes (S))), K)"),),
            subprograms=("Inv_Round",),
        ),

        # -- the benign defect -------------------------------------------------
        Defect(
            name="D15-statement-key-array-length",
            kind="statement",
            description="the key array is declared longer than the maximum "
                        "key; the extra entries are never read (the paper's "
                        "benign defect)",
            optimized_patch=(
                ("type Key_Bytes is array (0 .. 31) of Byte;",
                 "type Key_Bytes is array (0 .. 33) of Byte;"),),
            refactored_patch=(
                ("type Key_Bytes is array (0 .. 31) of Byte;",
                 "type Key_Bytes is array (0 .. 33) of Byte;"),),
            subprograms=("Cipher", "Inv_Cipher"),
            benign=True,
        ),
    ]
