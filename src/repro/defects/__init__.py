"""The seeded-defect experiment (paper section 7)."""

from .curated import curated_defects
from .seeder import SeededMutation, random_mutation
from .experiment import (
    DefectOutcome, STAGES, run_defect, run_experiment, stage_table,
)
from .types import DEFECT_KINDS, Defect

__all__ = [
    "Defect", "DEFECT_KINDS", "curated_defects",
    "SeededMutation", "random_mutation",
    "DefectOutcome", "run_defect", "run_experiment", "stage_table", "STAGES",
]
