"""Aggregated metrics report -- the analyzer box in the paper's figure 1.

``analyze_metrics`` bundles element, complexity and (optionally) VC metrics
for one program version; ``render_report`` prints the hybrid-metrics table
the user reviews when deciding whether further refactoring is needed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..lang import ast
from .complexity import ComplexityMetrics, complexity_metrics
from .elements import ElementMetrics, element_metrics
from .vcmetrics import VCMetrics

__all__ = ["MetricsReport", "analyze_metrics", "render_report"]


@dataclass(frozen=True)
class MetricsReport:
    label: str
    elements: ElementMetrics
    complexity: ComplexityMetrics
    vcs: Optional[VCMetrics] = None
    match_ratio: Optional[float] = None


def analyze_metrics(pkg: ast.Package, label: str = "",
                    vcs: Optional[VCMetrics] = None,
                    match_ratio: Optional[float] = None) -> MetricsReport:
    return MetricsReport(
        label=label or pkg.name,
        elements=element_metrics(pkg),
        complexity=complexity_metrics(pkg),
        vcs=vcs,
        match_ratio=match_ratio,
    )


def render_report(report: MetricsReport) -> str:
    e = report.elements
    c = report.complexity
    lines = [
        f"Metrics for {report.label}",
        f"  lines of code              {e.lines_of_code}",
        f"  logical SLOC               {e.logical_sloc}",
        f"  declarations               {e.declarations}",
        f"  statements                 {e.statements}",
        f"  subprograms                {e.subprograms}",
        f"  avg subprogram size        {e.average_subprogram_size:.2f}",
        f"  construct nesting          {e.construct_nesting_level}",
        f"  avg McCabe cyclomatic      {c.average_mccabe:.2f}",
        f"  max McCabe cyclomatic      {c.max_mccabe}",
        f"  avg essential complexity   {c.average_essential:.2f}",
        f"  avg statement complexity   {c.average_statement_complexity:.2f}",
        f"  short-circuit complexity   {c.total_short_circuit}",
        f"  max loop nesting           {c.max_loop_nesting}",
    ]
    if report.vcs is not None:
        v = report.vcs
        if v.feasible:
            lines += [
                f"  VCs generated              {v.vc_count}",
                f"  generated VC size          {v.generated_mb:.2f} MB",
                f"  simplified VC size         {v.simplified_mb:.4f} MB",
                f"  max VC length              {v.max_vc_lines} lines",
                f"  analysis work              {v.work_units} units "
                f"(~{v.simulated_seconds:.1f} s simulated)",
            ]
            if v.fixpoint_exhausted:
                lines.append(
                    f"  rewrite fixpoints exhausted {v.fixpoint_exhausted} "
                    f"(residues may not be normal forms)")
            if v.index_hits or v.cross_vc_hits:
                lines.append(
                    f"  rewrite hot path           "
                    f"{v.index_skipped_rules} rule scans skipped "
                    f"({v.index_hits} indexed lookups), "
                    f"{v.cross_vc_hits} cross-VC cache hits")
        else:
            lines.append("  VC analysis                INFEASIBLE "
                         "(resources exhausted)")
    if report.match_ratio is not None:
        lines.append(f"  spec structure match       {report.match_ratio:.1%}")
    return "\n".join(lines)
