"""Specification-structure metrics (paper section 5.2).

"A summary and comparison of the architectures of the original and the
extracted specifications to suggest an initial impression of the likely
difficulty of the implication proof."

An :class:`ArchitectureSummary` lists a unit's *key structural elements* --
the paper's phrase: "data types, operators, functions and tables" -- in a
representation-neutral form so a MiniAda package and a MiniPVS
specification can be compared.  The match-ratio computation itself lives in
:mod:`repro.extract.matchratio`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet, Tuple

from ..lang import ast

__all__ = ["Element", "ArchitectureSummary", "package_architecture"]


@dataclass(frozen=True)
class Element:
    """One key structural element.

    ``kind`` is 'type', 'table', 'function' or 'operator'; ``arity`` is the
    parameter count for functions/operators, 0 otherwise.
    """

    kind: str
    name: str
    arity: int = 0

    def normalized_name(self) -> str:
        return self.name.replace("_", "").lower()


@dataclass(frozen=True)
class ArchitectureSummary:
    unit: str
    elements: Tuple[Element, ...]

    def of_kind(self, kind: str) -> Tuple[Element, ...]:
        return tuple(e for e in self.elements if e.kind == kind)

    @property
    def names(self) -> FrozenSet[str]:
        return frozenset(e.normalized_name() for e in self.elements)


def package_architecture(pkg: ast.Package) -> ArchitectureSummary:
    """Key structural elements of a MiniAda package."""
    elements = []
    for d in pkg.decls:
        if isinstance(d, (ast.ModTypeDecl, ast.RangeTypeDecl,
                          ast.SubtypeDecl, ast.ArrayTypeDecl)):
            elements.append(Element(kind="type", name=d.name))
        elif isinstance(d, ast.ConstDecl):
            elements.append(Element(kind="table", name=d.name))
    for sp in pkg.subprograms:
        elements.append(Element(kind="function", name=sp.name,
                                arity=len(sp.params)))
    return ArchitectureSummary(unit=pkg.name, elements=tuple(elements))
