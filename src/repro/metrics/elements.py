"""Element metrics (paper section 5.2).

"Lines of code, number of declarations, statements, and subprograms,
average size of subprograms, logical SLOC, unit nesting level, and
construct nesting level."

All line-based metrics are computed over the canonical pretty-printed
source (see :mod:`repro.lang.printer`), annotation lines excluded, just as
the paper's counts exclude annotations ("1365 lines without annotations").
"""

from __future__ import annotations

from dataclasses import dataclass

from ..lang import ast
from ..lang.printer import print_package

__all__ = ["ElementMetrics", "element_metrics", "count_statements",
           "construct_nesting"]


@dataclass(frozen=True)
class ElementMetrics:
    lines_of_code: int          # non-blank, non-annotation source lines
    logical_sloc: int           # executable statements + declarations
    declarations: int
    statements: int
    subprograms: int
    average_subprogram_size: float  # statements per subprogram
    unit_nesting_level: int     # packages are not nestable in MiniAda: 1
    construct_nesting_level: int


def count_statements(stmts) -> int:
    total = 0
    for s in stmts:
        if isinstance(s, ast.Assert):
            continue  # annotation, not code
        total += 1
        if isinstance(s, ast.If):
            for _, body in s.branches:
                total += count_statements(body)
            total += count_statements(s.else_body)
        elif isinstance(s, (ast.For, ast.While)):
            total += count_statements(s.body)
    return total


def construct_nesting(stmts, depth: int = 0) -> int:
    deepest = depth
    for s in stmts:
        if isinstance(s, ast.If):
            for _, body in s.branches:
                deepest = max(deepest, construct_nesting(body, depth + 1))
            deepest = max(deepest, construct_nesting(s.else_body, depth + 1))
        elif isinstance(s, (ast.For, ast.While)):
            deepest = max(deepest, construct_nesting(s.body, depth + 1))
    return deepest


def element_metrics(pkg: ast.Package) -> ElementMetrics:
    text = print_package(pkg)
    loc = sum(1 for line in text.splitlines()
              if line.strip() and not line.strip().startswith("--#"))
    declarations = len(pkg.decls) + sum(len(sp.decls) + len(sp.params)
                                        for sp in pkg.subprograms)
    declarations -= sum(
        1 for d in pkg.decls
        if isinstance(d, (ast.ProofFunctionDecl, ast.ProofRuleDecl)))
    statements = sum(count_statements(sp.body) for sp in pkg.subprograms)
    subprograms = len(pkg.subprograms)
    nesting = max((construct_nesting(sp.body) for sp in pkg.subprograms),
                  default=0)
    return ElementMetrics(
        lines_of_code=loc,
        logical_sloc=statements + declarations,
        declarations=declarations,
        statements=statements,
        subprograms=subprograms,
        average_subprogram_size=(statements / subprograms
                                 if subprograms else 0.0),
        unit_nesting_level=1,
        construct_nesting_level=nesting,
    )
