"""Complexity metrics (paper section 5.2).

"McCabe cyclomatic complexity, essential complexity, statement complexity,
short-circuit complexity, and loop nesting level."

Notes on fidelity:

* *Essential complexity* measures unstructuredness (gotos, multi-exit
  loops).  MiniAda is fully structured apart from early ``return``, which
  we count as SPARK's metric tool does (each extra exit point adds one).
* *Statement complexity* follows the GNAT metric: average number of
  syntactic constructs per executable statement.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from ..lang import ast
from .elements import count_statements

__all__ = ["ComplexityMetrics", "SubprogramComplexity", "complexity_metrics",
           "mccabe"]


@dataclass(frozen=True)
class SubprogramComplexity:
    name: str
    mccabe: int
    essential: int
    statement_complexity: float
    short_circuit: int
    loop_nesting: int


@dataclass(frozen=True)
class ComplexityMetrics:
    per_subprogram: Dict[str, SubprogramComplexity]

    @property
    def average_mccabe(self) -> float:
        if not self.per_subprogram:
            return 0.0
        return sum(c.mccabe for c in self.per_subprogram.values()) \
            / len(self.per_subprogram)

    @property
    def max_mccabe(self) -> int:
        return max((c.mccabe for c in self.per_subprogram.values()),
                   default=0)

    @property
    def average_essential(self) -> float:
        if not self.per_subprogram:
            return 0.0
        return sum(c.essential for c in self.per_subprogram.values()) \
            / len(self.per_subprogram)

    @property
    def max_loop_nesting(self) -> int:
        return max((c.loop_nesting for c in self.per_subprogram.values()),
                   default=0)

    @property
    def average_statement_complexity(self) -> float:
        if not self.per_subprogram:
            return 0.0
        return sum(c.statement_complexity
                   for c in self.per_subprogram.values()) \
            / len(self.per_subprogram)

    @property
    def total_short_circuit(self) -> int:
        return sum(c.short_circuit for c in self.per_subprogram.values())


def _decision_points(node: ast.Node) -> int:
    count = 0
    for n in ast.walk(node):
        if isinstance(n, ast.If):
            count += len(n.branches)
        elif isinstance(n, (ast.For, ast.While)):
            count += 1
        elif isinstance(n, ast.BinOp) and n.op in ("and_then", "or_else"):
            count += 1
    return count


def mccabe(sp: ast.Subprogram) -> int:
    """Cyclomatic complexity: decisions + 1."""
    return 1 + sum(_decision_points(s) for s in sp.body)


def _essential(sp: ast.Subprogram) -> int:
    """1 for fully structured code, +1 per early return (extra exit)."""
    returns = [n for n in ast.walk(sp) if isinstance(n, ast.Return)]
    extra_exits = max(0, len(returns) - (1 if sp.is_function else 0))
    return 1 + extra_exits


def _short_circuit(sp: ast.Subprogram) -> int:
    return sum(1 for n in ast.walk(sp)
               if isinstance(n, ast.BinOp) and n.op in ("and_then", "or_else"))


def _loop_nesting(stmts, depth=0) -> int:
    deepest = depth
    for s in stmts:
        if isinstance(s, (ast.For, ast.While)):
            deepest = max(deepest, _loop_nesting(s.body, depth + 1))
        elif isinstance(s, ast.If):
            for _, body in s.branches:
                deepest = max(deepest, _loop_nesting(body, depth))
            deepest = max(deepest, _loop_nesting(s.else_body, depth))
    return deepest


def _statement_complexity(sp: ast.Subprogram) -> float:
    statements = count_statements(sp.body)
    if statements == 0:
        return 0.0
    nodes = sum(ast.count_nodes(s) for s in sp.body
                if not isinstance(s, ast.Assert))
    return nodes / statements


def complexity_metrics(pkg: ast.Package) -> ComplexityMetrics:
    per = {}
    for sp in pkg.subprograms:
        per[sp.name] = SubprogramComplexity(
            name=sp.name,
            mccabe=mccabe(sp),
            essential=_essential(sp),
            statement_complexity=_statement_complexity(sp),
            short_circuit=_short_circuit(sp),
            loop_nesting=_loop_nesting(sp.body),
        )
    return ComplexityMetrics(per_subprogram=per)
