"""Verification-condition metrics (paper section 5.2).

"The number and size of verification conditions, maximum length of
verification conditions, and the time that the SPARK tools take to analyze
the verification conditions."

These are read off an :class:`~repro.vcgen.examiner.ExaminerReport`; this
module just shapes them into the record the figure-2 harness plots.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..vcgen import ExaminerReport

__all__ = ["VCMetrics", "vc_metrics"]


@dataclass(frozen=True)
class VCMetrics:
    feasible: bool
    vc_count: int
    generated_bytes: int
    simplified_bytes: int
    max_vc_lines: int
    max_residue_lines: int
    discharged_by_simplifier: int
    work_units: int
    simulated_seconds: float
    wall_seconds: float
    #: Rewrite fixpoints that exhausted their iteration budget; nonzero
    #: means some simplified residues are best-effort, not normal forms.
    fixpoint_exhausted: int = 0
    #: Hot-path instrumentation (DESIGN.md §13): dispatch-table lookups
    #: that pruned the rule scan, rules those lookups skipped, and
    #: subterm normal forms served by the cross-obligation cache.
    index_hits: int = 0
    index_skipped_rules: int = 0
    cross_vc_hits: int = 0

    @property
    def generated_mb(self) -> float:
        return self.generated_bytes / (1024 * 1024)

    @property
    def simplified_mb(self) -> float:
        return self.simplified_bytes / (1024 * 1024)


def vc_metrics(report: ExaminerReport) -> VCMetrics:
    return VCMetrics(
        feasible=report.feasible,
        vc_count=report.vc_count,
        generated_bytes=report.generated_bytes,
        simplified_bytes=report.simplified_bytes,
        max_vc_lines=report.max_generated_lines,
        max_residue_lines=report.max_residue_lines,
        discharged_by_simplifier=report.discharged_count,
        work_units=report.work_units,
        simulated_seconds=report.simulated_seconds,
        wall_seconds=report.wall_seconds,
        fixpoint_exhausted=report.fixpoint_exhausted,
        index_hits=report.index_hits,
        index_skipped_rules=report.index_skipped_rules,
        cross_vc_hits=report.cross_vc_hits,
    )
