"""Source-code metrics analyzer (GNAT metric tool + Examiner substitute).

Provides the four metric families of paper section 5.2: element metrics,
complexity metrics, verification-condition metrics and specification-
structure summaries.
"""

from .complexity import (
    ComplexityMetrics, SubprogramComplexity, complexity_metrics, mccabe,
)
from .elements import ElementMetrics, element_metrics
from .report import MetricsReport, analyze_metrics, render_report
from .structure import ArchitectureSummary, Element, package_architecture
from .vcmetrics import VCMetrics, vc_metrics

__all__ = [
    "ElementMetrics", "element_metrics",
    "ComplexityMetrics", "SubprogramComplexity", "complexity_metrics",
    "mccabe",
    "VCMetrics", "vc_metrics",
    "ArchitectureSummary", "Element", "package_architecture",
    "MetricsReport", "analyze_metrics", "render_report",
]
