"""Table harnesses: Table 1 (annotations), the implementation-proof
statistics of 6.2.3, the implication-proof statistics of 6.2.4, and
tables 2/3 (defect detection)."""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from typing import Dict, List, Optional

from ..aes.annotations import annotated_package
from ..aes.fips197 import fips197_theory
from ..aes.proof_scripts import aes_proof_scripts
from ..defects import run_experiment, stage_table
from ..exec.config import ExecConfig, coerce_exec_config, \
    reject_legacy_exec_kwargs
from ..extract import extract_specification
from ..implication import ImplicationResult, prove_implication
from ..lang import AnnotationCounts, count_annotations
from ..prover import ImplementationProof, ImplementationProofResult
from ..spec import check_theory, discharge_tccs, spec_line_count

__all__ = [
    "table1", "render_table1", "implementation_proof_stats",
    "implication_proof_stats", "ImplicationStats", "defect_tables",
    "render_defect_table",
]


def table1() -> AnnotationCounts:
    """Annotation counts of the fully annotated refactored AES."""
    return count_annotations(annotated_package().package)


def render_table1(counts: AnnotationCounts) -> str:
    return "\n".join([
        "Table 1: Annotations in implementation proof",
        f"  Preconditions                        {counts.preconditions:>4}",
        f"  Postconditions                       {counts.postconditions:>4}",
        f"  Loop Invariants & Assertions         "
        f"{counts.invariants_and_asserts:>4}",
        f"  Proof Functions, Proof Rules & Other "
        f"{counts.proof_functions_rules_other:>4}",
    ])


@lru_cache(maxsize=None)
def implementation_proof_stats(exec: Optional[ExecConfig] = None,
                               manifest_dir: Optional[str] = None,
                               incremental: bool = False,
                               **legacy) -> ImplementationProofResult:
    """The full implementation proof over the annotated refactored AES
    (section 6.2.3's 306 VCs / 86.6% / 15-of-25 figures).  ``exec``
    configures the obligation scheduler (``ExecConfig`` is hashable, so
    identical configurations share the memoized run; the PR-3 era bare
    ``jobs`` shim is gone and raises ``TypeError``).
    ``manifest_dir``/``incremental`` (both hashable, so they key the
    memo too) enable edit-aware re-verification via the run manifest
    (DESIGN.md §15)."""
    reject_legacy_exec_kwargs("implementation_proof_stats", legacy)
    config = coerce_exec_config(exec, owner="implementation_proof_stats")
    typed = annotated_package()
    proof = ImplementationProof(typed, scripts=aes_proof_scripts(),
                                exec=config, manifest=manifest_dir,
                                incremental=incremental)
    return proof.run()


@dataclass
class ImplicationStats:
    extracted_lines: int
    extracted_tccs_total: int
    extracted_tccs_proved: int
    extracted_tccs_subsumed: int
    result: ImplicationResult


@lru_cache(maxsize=None)
def implication_proof_stats(exec: Optional[ExecConfig] = None,
                            **legacy) -> ImplicationStats:
    """Section 6.2.4: extracted-spec size, TCC accounting, lemma count.
    ``exec`` configures the obligation scheduler (the PR-3 era bare
    ``jobs`` shim is gone and raises ``TypeError``)."""
    reject_legacy_exec_kwargs("implication_proof_stats", legacy)
    config = coerce_exec_config(exec, owner="implication_proof_stats")
    typed = annotated_package()
    extraction = extract_specification(typed)
    check = check_theory(extraction.theory)
    tcc_report = discharge_tccs(extraction.theory, check.tccs)
    result = prove_implication(fips197_theory(), extraction.theory,
                               exec=config)
    return ImplicationStats(
        extracted_lines=spec_line_count(extraction.theory),
        extracted_tccs_total=tcc_report.total,
        extracted_tccs_proved=tcc_report.proved,
        extracted_tccs_subsumed=tcc_report.subsumed,
        result=result,
    )


@lru_cache(maxsize=1)
def defect_tables() -> Dict[int, Dict[str, int]]:
    """Tables 2 and 3: per-stage defect detection counts per setup."""
    outcomes = run_experiment()
    return {setup: stage_table(rows) for setup, rows in outcomes.items()}


def render_defect_table(setup: int, rows: Dict[str, int],
                        total: int = 15) -> str:
    remaining = total
    lines = [f"Table {1 + setup}: Defect detection for setup {setup}",
             f"  {'Verification Stage':<34}{'Caught':>7}{'Left':>6}",
             f"  {'Initial state':<34}{'':>7}{remaining:>6}"]
    names = {"refactoring": "Verification refactoring",
             "implementation": "Implementation proof",
             "implication": "Implication proof"}
    for stage in ("refactoring", "implementation", "implication"):
        caught = rows[stage]
        remaining -= caught
        lines.append(f"  {names[stage]:<34}{caught:>7}{remaining:>6}")
    return "\n".join(lines)
