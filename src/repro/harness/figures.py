"""Figure 2 harness: per-block metric measurements.

Reproduces the measurement protocol of paper section 6.2.2: after each
transformation block, postconditions are set to true, VCs are generated
with the SPARK-substitute examiner under its resource budget, simplified,
and the element/complexity/VC/structure metrics are recorded.  The six
panels of figure 2 are columns of the resulting table:

(a) lines of code            (b) average McCabe cyclomatic complexity
(c) analysis time            (d) size of generated VCs
(e) size of simplified VCs   (f) specification structure match ratio
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from typing import List, Optional

from ..aes.blocks import AESPipeline, BlockResult
from ..aes.fips197 import fips197_theory
from ..extract import extract_skeleton, match_ratio
from ..lang import with_true_postconditions, analyze
from ..metrics import complexity_metrics, element_metrics
from ..vcgen import Examiner, ExaminerLimits

__all__ = ["BlockMeasurement", "figure2", "render_figure2"]


@dataclass
class BlockMeasurement:
    index: int
    title: str
    transformations: int
    lines_of_code: int
    logical_sloc: int
    subprograms: int
    average_mccabe: float
    feasible: bool
    vc_count: int
    generated_mb: float
    simplified_mb: float
    max_vc_lines: int
    work_units: int
    simulated_seconds: float
    wall_seconds: float
    match_percent: float


def _measure(block: BlockResult, limits: ExaminerLimits) -> BlockMeasurement:
    pkg = block.typed.package
    elements = element_metrics(pkg)
    complexity = complexity_metrics(pkg)

    # Paper protocol: set all postconditions to true before examining.
    stripped = analyze(with_true_postconditions(pkg))
    report = Examiner(stripped, limits=limits).examine()

    skeleton = extract_skeleton(block.typed)
    ratio = match_ratio(fips197_theory(), skeleton)

    return BlockMeasurement(
        index=block.index,
        title=block.title,
        transformations=block.transformation_count,
        lines_of_code=elements.lines_of_code,
        logical_sloc=elements.logical_sloc,
        subprograms=elements.subprograms,
        average_mccabe=complexity.average_mccabe,
        feasible=report.feasible,
        vc_count=report.vc_count,
        generated_mb=report.generated_bytes / (1024 * 1024),
        simplified_mb=report.simplified_bytes / (1024 * 1024),
        max_vc_lines=report.max_generated_lines,
        work_units=report.work_units,
        simulated_seconds=report.simulated_seconds,
        wall_seconds=report.wall_seconds,
        match_percent=ratio.percent,
    )


@lru_cache(maxsize=4)
def figure2(upto: int = 14, check: str = "differential",
            trials: int = 4,
            max_tree_bytes: Optional[int] = None) -> List[BlockMeasurement]:
    """Run the pipeline and measure every block (0 = original)."""
    limits = ExaminerLimits()
    if max_tree_bytes is not None:
        limits = ExaminerLimits(max_tree_bytes=max_tree_bytes)
    pipeline = AESPipeline(check=check, trials=trials)
    measurements: List[BlockMeasurement] = []
    pipeline.run(upto=upto,
                 on_block=lambda b: measurements.append(_measure(b, limits)))
    return measurements


def render_figure2(measurements: List[BlockMeasurement]) -> str:
    header = (f"{'blk':>3} {'LoC':>5} {'SLOC':>5} {'subp':>4} "
              f"{'McCabe':>6} {'VCs':>4} {'genMB':>9} {'simpMB':>8} "
              f"{'work':>12} {'sim-s':>8} {'match%':>6}")
    lines = [header, "-" * len(header)]
    for m in measurements:
        if m.feasible:
            lines.append(
                f"{m.index:>3} {m.lines_of_code:>5} {m.logical_sloc:>5} "
                f"{m.subprograms:>4} {m.average_mccabe:>6.2f} {m.vc_count:>4} "
                f"{m.generated_mb:>9.3f} {m.simplified_mb:>8.4f} "
                f"{m.work_units:>12} {m.simulated_seconds:>8.1f} "
                f"{m.match_percent:>6.1f}")
        else:
            lines.append(
                f"{m.index:>3} {m.lines_of_code:>5} {m.logical_sloc:>5} "
                f"{m.subprograms:>4} {m.average_mccabe:>6.2f} "
                f"{'-- analysis infeasible (resources exhausted) --':>44} "
                f"{m.match_percent:>6.1f}")
    return "\n".join(lines)
