"""Experiment harnesses: regenerate every table and figure of the paper."""

from .figures import BlockMeasurement, figure2, render_figure2
from .tables import (
    ImplicationStats, defect_tables, implementation_proof_stats,
    implication_proof_stats, render_defect_table, render_table1, table1,
)

__all__ = [
    "BlockMeasurement", "figure2", "render_figure2",
    "table1", "render_table1",
    "implementation_proof_stats", "implication_proof_stats",
    "ImplicationStats", "defect_tables", "render_defect_table",
]
