"""Profiling entry point for the proof pipeline's hot paths.

Run as ``python -m repro.harness.profile STAGE [--top N] [--json]``.
Wraps one pipeline stage in :mod:`cProfile` and prints the top-N
functions by cumulative time -- the quickest way to see where an
optimization (DESIGN.md section 13) actually lands.

Stages:

``examine``      VC generation + simplification over the annotated AES
                 (the rewriter-dominated leg).
``impl-proof``   the full implementation proof, serial backend (vcgen,
                 simplify, auto prover, interactive scripts).
``implication``  the implication proof against the FIPS-197 theory.
``figure2``      the metrics sweep across all transformation blocks.

``--json`` emits the rows as a machine-readable list instead of the
pstats table (schema: ``{"stage", "total_seconds", "rows": [{"function",
"calls", "tottime", "cumtime"}]}``).
"""

from __future__ import annotations

import cProfile
import io
import json
import pstats
import sys
from typing import Callable, Dict

__all__ = ["STAGES", "profile_stage", "main"]


def _stage_examine() -> None:
    from ..aes.annotations import annotated_package
    from ..vcgen import Examiner
    Examiner(annotated_package()).examine()


def _stage_impl_proof() -> None:
    from ..aes.annotations import annotated_package
    from ..aes.proof_scripts import aes_proof_scripts
    from ..exec import ExecConfig
    from ..prover import ImplementationProof
    # Serial backend: keeps every frame in this process so the profile
    # sees the provers, not a pool round-trip.
    ImplementationProof(annotated_package(), scripts=aes_proof_scripts(),
                        exec=ExecConfig(jobs=1, backend="serial")).run()


def _stage_implication() -> None:
    from ..aes.annotations import annotated_package
    from ..aes.fips197 import fips197_theory
    from ..exec import ExecConfig
    from ..extract import extract_specification
    from ..implication import prove_implication
    extraction = extract_specification(annotated_package())
    prove_implication(fips197_theory(), extraction.theory,
                      exec=ExecConfig(jobs=1, backend="serial"))


def _stage_figure2() -> None:
    from .figures import figure2
    figure2()


STAGES: Dict[str, Callable[[], None]] = {
    "examine": _stage_examine,
    "impl-proof": _stage_impl_proof,
    "implication": _stage_implication,
    "figure2": _stage_figure2,
}


def profile_stage(stage: str) -> pstats.Stats:
    """Run ``stage`` under cProfile and return its stats."""
    try:
        fn = STAGES[stage]
    except KeyError:
        raise ValueError(f"unknown stage {stage!r}; expected one of "
                         f"{'/'.join(sorted(STAGES))}")
    profiler = cProfile.Profile()
    profiler.enable()
    try:
        fn()
    finally:
        profiler.disable()
    return pstats.Stats(profiler)


def _rows(stats: pstats.Stats, top: int):
    rows = []
    entries = sorted(stats.stats.items(),
                     key=lambda item: item[1][3], reverse=True)
    for (filename, lineno, name), data in entries[:top]:
        ncalls, _primcalls, tottime, cumtime, _callers = (
            data[0], data[1], data[2], data[3], data[4])
        rows.append({
            "function": f"{filename}:{lineno}({name})",
            "calls": ncalls,
            "tottime": round(tottime, 6),
            "cumtime": round(cumtime, 6),
        })
    return rows


def main(argv=None) -> int:
    argv = argv if argv is not None else sys.argv[1:]
    as_json = "--json" in argv
    top = 25
    positional = []
    i = 0
    while i < len(argv):
        arg = argv[i]
        if arg == "--json":
            pass
        elif arg == "--top" and i + 1 < len(argv):
            i += 1
            try:
                top = int(argv[i])
            except ValueError:
                raise SystemExit(f"error: --top expects an integer, "
                                 f"got {argv[i]!r}")
        elif arg.startswith("--top="):
            try:
                top = int(arg.split("=", 1)[1])
            except ValueError:
                raise SystemExit(f"error: --top expects an integer, "
                                 f"got {arg!r}")
        elif arg.startswith("--"):
            raise SystemExit(f"error: unknown flag {arg!r}")
        else:
            positional.append(arg)
        i += 1
    if top < 1:
        raise SystemExit(f"error: --top must be >= 1, got {top}")
    if len(positional) != 1:
        raise SystemExit(f"usage: python -m repro.harness.profile "
                         f"{{{'|'.join(sorted(STAGES))}}} [--top N] [--json]")
    stage = positional[0]
    try:
        stats = profile_stage(stage)
    except ValueError as exc:
        raise SystemExit(f"error: {exc}")
    if as_json:
        print(json.dumps({
            "stage": stage,
            "total_seconds": round(stats.total_tt, 6),
            "rows": _rows(stats, top),
        }, indent=2))
    else:
        buffer = io.StringIO()
        stats.stream = buffer
        stats.sort_stats("cumulative").print_stats(top)
        print(f"stage: {stage} ({stats.total_tt:.3f} s total)")
        print(buffer.getvalue())
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
