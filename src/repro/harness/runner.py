"""Experiment runner: regenerates every table and figure of the paper's
evaluation and writes a combined report (used to produce EXPERIMENTS.md).

Run as ``python -m repro.harness.runner [--quick] [--plan] [--jobs N]
[--backend {serial,thread,process,remote}] [--timeout S] [--retries N]
[--max-retry-delay S] [--on-backend-failure {raise,degrade}]
[--remote-worker HOST:PORT]... [--remote-listen [HOST:]PORT]
[--lease-timeout S] [--no-remote-shared-cache]
[--batch-size N] [--batch-bytes-cap BYTES] [--plan-cache PATH]
[--incremental] [--manifest-dir DIR]``.  ``--plan`` runs the automated
verification-refactoring planner (:mod:`repro.plan`) on the AES case
study instead of the table/figure harness, writing ``results/plan.md``
(``--plan-cache`` persists its probe scores and theorem verdicts so a
replan replays warm).  The flags map onto one
:class:`~repro.exec.ExecConfig` driving the proof legs; the execution
configuration (including the retry policy and any backend degradations)
is recorded in ``results/telemetry.json``.  ``--incremental`` replays
unchanged-cone verdicts from the previous run's manifest
(``results/manifest`` by default; pair with ``REPRO_CACHE_DIR`` so the
result cache survives across processes) and surfaces the
``incr_replayed`` / ``incr_rechecked`` / ``incr_manifest_miss``
counters in the telemetry context.
"""

from __future__ import annotations

import json
import os
import sys
import time
from pathlib import Path
from typing import Optional

from ..exec import (BACKENDS, ExecConfig, RetryPolicy, atomic_write_text,
                    default_telemetry)
from .figures import figure2, render_figure2
from .tables import (
    defect_tables, implementation_proof_stats, implication_proof_stats,
    render_defect_table, render_table1, table1,
)

__all__ = ["run_all", "main"]


def run_all(upto: int = 14, quick: bool = False, jobs: int = 1,
            backend: str = "thread",
            timeout: Optional[float] = None,
            exec: Optional[ExecConfig] = None,
            manifest_dir: Optional[str] = None,
            incremental: bool = False) -> str:
    config = exec if exec is not None else \
        ExecConfig(jobs=jobs, backend=backend, timeout_seconds=timeout)
    sections = []
    # Monotonic: a wall-clock step mid-run must not distort the report
    # (same defect class as serve's queue_seconds, fixed in PR 7).
    started = time.monotonic()

    sections.append("## Figure 2: metrics across the transformation blocks")
    measurements = figure2(upto=upto)
    sections.append("```")
    sections.append(render_figure2(measurements))
    sections.append("```")

    sections.append("## Table 1: annotations in the implementation proof")
    sections.append("```")
    sections.append(render_table1(table1()))
    sections.append("```")

    sections.append("## Implementation proof (paper 6.2.3)")
    impl = implementation_proof_stats(exec=config,
                                      manifest_dir=manifest_dir,
                                      incremental=incremental)
    auto_sps = impl.fully_automatic_subprograms()
    total_sps = len({o.vc.subprogram for o in impl.outcomes})
    sections.append("```")
    if impl.incremental is not None:
        stats = impl.incremental
        sections.append(
            f"incremental                replayed {stats.replayed_vcs} / "
            f"re-checked {stats.rechecked_vcs} VCs "
            f"(manifest miss: {stats.manifest_miss})")
    sections.append(
        f"total VCs                  {impl.total_vcs}\n"
        f"discharged automatically   {impl.auto_discharged} "
        f"({impl.auto_percent:.1f}%)\n"
        f"discharged interactively   {impl.interactive_discharged}\n"
        f"undischarged               {len(impl.undischarged)}\n"
        f"fully automatic subprograms {len(auto_sps)} of {total_sps}\n"
        f"max interactive VC length  {impl.max_interactive_vc_lines} lines\n"
        f"wall time                  {impl.wall_seconds:.1f} s")
    sections.append("```")

    sections.append("## Implication proof (paper 6.2.4)")
    imp = implication_proof_stats(exec=config)
    res = imp.result
    sections.append("```")
    sections.append(
        f"extracted specification    {imp.extracted_lines} lines\n"
        f"extracted-spec TCCs        {imp.extracted_tccs_total} "
        f"({imp.extracted_tccs_proved} proved automatically, "
        f"{imp.extracted_tccs_subsumed} subsumed)\n"
        f"major lemmas               {res.lemma_count}\n"
        f"implication TCCs           "
        f"{res.tcc_total} ({res.tcc_proved} proved, "
        f"{res.tcc_subsumed} subsumed)\n"
        f"lemma evidence             {res.by_evidence()}\n"
        f"lemmas needing manual steps {res.interactive_lemmas} "
        f"(total steps {res.total_manual_steps})\n"
        f"structure match ratio      {res.ratio.percent:.1f}%\n"
        f"theorem holds              {res.holds} "
        f"(proof strength: {res.is_proof})\n"
        f"wall time                  {res.wall_seconds:.1f} s")
    sections.append("```")

    if not quick:
        sections.append("## Tables 2 and 3: defect detection")
        tables = defect_tables()
        for setup in sorted(tables):
            sections.append("```")
            sections.append(render_defect_table(setup, tables[setup]))
            sections.append("```")

    sections.append("## Obligation execution (repro.exec)")
    sections.append("```")
    sections.append(default_telemetry().summary())
    sections.append("```")

    sections.append(
        f"\n_total harness time: {time.monotonic() - started:.0f} s_")
    return "\n\n".join(sections)


def _flag_value(argv, flag: str) -> Optional[str]:
    raw = None
    for i, arg in enumerate(argv):
        if arg == flag and i + 1 < len(argv):
            raw = argv[i + 1]
        elif arg.startswith(flag + "="):
            raw = arg.split("=", 1)[1]
    return raw


def _parse_jobs(argv) -> int:
    raw = _flag_value(argv, "--jobs")
    if raw is None:
        return 1
    try:
        value = int(raw)
    except ValueError:
        raise SystemExit(f"error: --jobs expects an integer, got {raw!r}")
    if value < 1:
        # A typo'd --jobs 0 used to be clamped to 1, silently serializing
        # the whole benchmark run; fail loudly instead.
        raise SystemExit(f"error: --jobs must be >= 1, got {raw!r}")
    return value


def _parse_backend(argv) -> str:
    raw = _flag_value(argv, "--backend")
    if raw is None:
        return "thread"
    if raw not in BACKENDS:
        raise SystemExit(f"error: --backend expects one of "
                         f"{'/'.join(BACKENDS)}, got {raw!r}")
    return raw


def _parse_timeout(argv) -> Optional[float]:
    raw = _flag_value(argv, "--timeout")
    if raw is None:
        return None
    try:
        value = float(raw)
    except ValueError:
        raise SystemExit(f"error: --timeout expects seconds, got {raw!r}")
    if value <= 0:
        raise SystemExit(f"error: --timeout must be positive, got {raw!r}")
    return value


def _parse_retry_policy(argv) -> RetryPolicy:
    raw = _flag_value(argv, "--retries")
    retries = 0
    if raw is not None:
        try:
            retries = int(raw)
        except ValueError:
            raise SystemExit(f"error: --retries expects an integer, "
                             f"got {raw!r}")
        if retries < 0:
            raise SystemExit(f"error: --retries must be >= 0, got {raw!r}")
    raw = _flag_value(argv, "--max-retry-delay")
    if raw is None:
        return RetryPolicy(retries=retries)
    try:
        max_delay = float(raw)
    except ValueError:
        raise SystemExit(f"error: --max-retry-delay expects seconds, "
                         f"got {raw!r}")
    if max_delay < 0:
        raise SystemExit(f"error: --max-retry-delay must be >= 0, "
                         f"got {raw!r}")
    return RetryPolicy(retries=retries, max_delay=max_delay)


def _parse_batch(argv) -> dict:
    """The micro-obligation batching knobs (DESIGN.md §18).  Bounds are
    enforced here *and* in ExecConfig -- the flag layer fails with the
    flag's name, so a typo'd ``--batch-size 0`` (which would silently
    drop work if clamped) stops the run before anything is scheduled."""
    fields = {}
    raw = _flag_value(argv, "--batch-size")
    if raw is not None:
        try:
            value = int(raw)
        except ValueError:
            raise SystemExit(f"error: --batch-size expects an integer, "
                             f"got {raw!r}")
        if value < 1:
            raise SystemExit(f"error: --batch-size must be >= 1 "
                             f"(1 disables batching), got {raw!r}")
        fields["batch_size"] = value
    raw = _flag_value(argv, "--batch-bytes-cap")
    if raw is not None:
        try:
            value = int(raw)
        except ValueError:
            raise SystemExit(f"error: --batch-bytes-cap expects bytes, "
                             f"got {raw!r}")
        if value <= 0:
            raise SystemExit(f"error: --batch-bytes-cap must be a "
                             f"positive byte count, got {raw!r}")
        fields["batch_bytes_cap"] = value
    return fields


def _parse_on_backend_failure(argv) -> str:
    raw = _flag_value(argv, "--on-backend-failure")
    if raw is None:
        return "raise"
    if raw not in ("raise", "degrade"):
        raise SystemExit(f"error: --on-backend-failure expects "
                         f"raise or degrade, got {raw!r}")
    return raw


def _flag_values(argv, flag: str) -> list:
    """Every occurrence of a repeatable ``--flag VALUE`` / ``--flag=VALUE``."""
    values = []
    for i, arg in enumerate(argv):
        if arg == flag and i + 1 < len(argv):
            values.append(argv[i + 1])
        elif arg.startswith(flag + "="):
            values.append(arg.split("=", 1)[1])
    return values


def _parse_remote(argv) -> dict:
    """The proof-farm fields of the ExecConfig: ``--remote-worker`` is
    repeatable (one listening worker address per flag), ``--remote-listen``
    binds the coordinator for dial-in workers, ``--lease-timeout`` bounds
    one obligation lease, ``--no-remote-shared-cache`` turns off the
    coordinator's networked cache tier.  Address validation is
    ExecConfig's own (``ValueError`` surfaces as a startup failure)."""
    fields = {
        "remote_workers": tuple(_flag_values(argv, "--remote-worker")),
        "remote_listen": _flag_value(argv, "--remote-listen"),
        "remote_shared_cache": "--no-remote-shared-cache" not in argv,
    }
    raw = _flag_value(argv, "--lease-timeout")
    if raw is not None:
        try:
            fields["lease_timeout_seconds"] = float(raw)
        except ValueError:
            raise SystemExit(f"error: --lease-timeout expects seconds, "
                             f"got {raw!r}")
    return fields


def _parse_incremental(argv):
    """``(manifest_dir, incremental)`` from ``--incremental`` /
    ``--manifest-dir``.  ``--incremental`` implies the default manifest
    directory (``results/manifest``); naming a ``--manifest-dir`` alone
    persists manifests without consulting them (the warm-up run)."""
    incremental = "--incremental" in argv
    manifest_dir = _flag_value(argv, "--manifest-dir")
    if manifest_dir is None and incremental:
        manifest_dir = "results/manifest"
    return manifest_dir, incremental


def run_plan(exec: ExecConfig, plan_cache=None) -> str:
    """``--plan`` mode: run the automated planner on the AES case study
    and render its chain report (written to ``results/plan.md``).
    ``plan_cache`` names the persistent probe/score store
    (``--plan-cache``) so a replan replays warm."""
    from ..plan.cli import render_report
    from ..plan import plan_aes
    started = time.monotonic()
    result = plan_aes(exec=exec, plan_cache=plan_cache)
    return render_report(result, time.monotonic() - started)


def main(argv=None) -> int:
    argv = argv if argv is not None else sys.argv[1:]
    if "--help" in argv or "-h" in argv:
        print("usage: python -m repro.harness.runner [--quick] [--plan] "
              "[--jobs N]\n"
              "  [--backend {serial,thread,process,remote}] [--timeout S] "
              "[--retries N]\n"
              "  [--max-retry-delay S] [--on-backend-failure "
              "{raise,degrade}]\n"
              "  [--remote-worker HOST:PORT]... [--remote-listen "
              "[HOST:]PORT]\n"
              "  [--lease-timeout S] [--no-remote-shared-cache]\n"
              "  [--batch-size N] [--batch-bytes-cap BYTES] "
              "[--plan-cache PATH]\n"
              "  [--incremental] [--manifest-dir DIR]")
        return 0
    quick = "--quick" in argv
    try:
        config = ExecConfig(jobs=_parse_jobs(argv),
                            backend=_parse_backend(argv),
                            timeout_seconds=_parse_timeout(argv),
                            retries=_parse_retry_policy(argv),
                            on_backend_failure=_parse_on_backend_failure(argv),
                            **_parse_batch(argv),
                            **_parse_remote(argv))
    except ValueError as exc:
        raise SystemExit(f"error: {exc}")
    if "--plan" in argv:
        report = run_plan(exec=config,
                          plan_cache=_flag_value(argv, "--plan-cache"))
        print(report)
        out = Path("results")
        out.mkdir(exist_ok=True)
        atomic_write_text(out / "plan.md", report)
        return 0
    manifest_dir, incremental = _parse_incremental(argv)
    if incremental and not os.environ.get("REPRO_CACHE_DIR"):
        print("note: --incremental replays verdicts from the result "
              "cache; without REPRO_CACHE_DIR the cache is per-process "
              "and nothing can replay across runs", file=sys.stderr)
    report = run_all(quick=quick, exec=config,
                     manifest_dir=manifest_dir, incremental=incremental)
    print(report)
    out = Path("results")
    out.mkdir(exist_ok=True)
    # Atomic publication: a reader (or a crash) mid-run never sees a
    # truncated report next to a fresh figure.
    atomic_write_text(out / "report.md", report)
    measurements = figure2()
    atomic_write_text(out / "figure2.json", json.dumps(
        [m.__dict__ for m in measurements], indent=2, default=str))
    impl = implementation_proof_stats(   # memoized: same run
        exec=config, manifest_dir=manifest_dir, incremental=incremental)
    context = {
        "backend": config.backend,
        "jobs": config.jobs,
        "timeout_seconds": config.timeout_seconds,
        "retry_policy": config.retries.to_json(),
        "on_error": config.on_error,
        "on_backend_failure": config.on_backend_failure,
        "remote_workers": list(config.remote_workers),
        "remote_listen": config.remote_listen,
        "lease_timeout_seconds": config.lease_timeout_seconds,
        "remote_shared_cache": config.remote_shared_cache,
        "batch_size": config.batch_size,
        "batch_bytes_cap": config.batch_bytes_cap,
        "rewrite_hot_path": {
            "index_hits": impl.report.index_hits,
            "index_skipped_rules": impl.report.index_skipped_rules,
            "cross_vc_hits": impl.report.cross_vc_hits,
        },
    }
    if impl.incremental is not None:
        context["incremental"] = impl.incremental.to_json()
    default_telemetry().dump_json(out / "telemetry.json", context=context)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
