"""Multi-tenant warm caches: one isolated cache pair per namespace.

Each client namespace owns a private :class:`~repro.exec.ResultCache`
(proof verdicts, content-addressed on package text × VC fingerprint ×
prover config) and a private :class:`~repro.logic.NormalizationCache`
(normal forms, keyed on ``simplifier_rules_key`` ×
:func:`~repro.logic.canon.fingerprint`).  Both stay warm across requests
of the same namespace -- the second proof of an already-proved package
replays from cache -- and the isolation guarantee is structural, not
key-based: namespaces map to *distinct cache instances* (and distinct
on-disk directories under ``state_dir/cache/<namespace>``), so no key
collision, however contrived, can leak one tenant's entries to another.
Within a namespace the entries are fingerprint-scoped exactly as in the
batch harness, which is what makes warm hits sound (DESIGN.md §8, §13).

The service must therefore *always* pass a tenant's caches into the
``ExecConfig`` it executes with -- ``cache=None`` would silently select
the process-wide default cache and merge every tenant into one pool.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Optional

from ..exec.cache import ResultCache
from ..incr.manifest import ManifestStore
from ..logic.normcache import NormalizationCache

__all__ = ["TenantCaches", "TenantRegistry"]


@dataclass
class TenantCaches:
    """The warm state of one namespace."""

    namespace: str
    result_cache: ResultCache
    norm_cache: NormalizationCache
    #: Per-tenant run manifests (``state_dir/manifest/<namespace>``) for
    #: incremental re-verification; ``None`` on a non-durable daemon.
    manifest_store: Optional[ManifestStore] = None
    requests_served: int = 0

    def snapshot(self) -> dict:
        return {
            "namespace": self.namespace,
            "requests_served": self.requests_served,
            "result_entries": len(self.result_cache),
            "result_hits": self.result_cache.hits,
            "result_misses": self.result_cache.misses,
            "norm_entries": len(self.norm_cache),
            "norm_hits": self.norm_cache.hits,
            "norm_misses": self.norm_cache.misses,
        }


class TenantRegistry:
    """Lazily materializes and hands out per-namespace cache pairs.

    ``state_dir`` (when given) adds a per-tenant on-disk result-cache
    tier under ``state_dir/cache/<namespace>``, so warm verdicts survive
    daemon restarts -- a replayed request after ``kill -9`` re-proves
    only what was never finished.  ``cache_memory_entries`` bounds each
    tenant's in-memory result layer (LRU); ``norm_entries`` each
    tenant's normalization cache.
    """

    def __init__(self, state_dir: Optional[Path] = None,
                 cache_memory_entries: Optional[int] = None,
                 norm_entries: Optional[int] = None):
        self.state_dir = Path(state_dir) if state_dir is not None else None
        self.cache_memory_entries = cache_memory_entries
        self.norm_entries = norm_entries
        self._lock = threading.Lock()
        self._tenants: Dict[str, TenantCaches] = {}

    def get(self, namespace: str) -> TenantCaches:
        """The namespace's caches, created on first use.  The namespace
        string is validated at the protocol layer (path-safe)."""
        with self._lock:
            tenant = self._tenants.get(namespace)
            if tenant is None:
                disk = None
                manifests = None
                if self.state_dir is not None:
                    disk = self.state_dir / "cache" / namespace
                    manifests = ManifestStore(
                        self.state_dir / "manifest" / namespace)
                norm_kwargs = {} if self.norm_entries is None else \
                    {"max_entries": self.norm_entries}
                tenant = TenantCaches(
                    namespace=namespace,
                    result_cache=ResultCache(
                        disk_dir=disk,
                        max_memory_entries=self.cache_memory_entries),
                    norm_cache=NormalizationCache(**norm_kwargs),
                    manifest_store=manifests)
                self._tenants[namespace] = tenant
            return tenant

    def __len__(self) -> int:
        with self._lock:
            return len(self._tenants)

    def snapshot(self) -> Dict[str, dict]:
        with self._lock:
            return {name: tenant.snapshot()
                    for name, tenant in sorted(self._tenants.items())}
