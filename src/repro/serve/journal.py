"""The durable obligation queue: an append-only journal with replay.

Durability contract (DESIGN.md §14): a request is journaled *before* its
``accepted`` reply is sent, so once a client has seen ``accepted`` the
request survives any daemon death -- ``kill -9`` included -- and is
re-executed on the next start.  Three pieces:

* ``journal.jsonl`` -- one JSON record per line, appended with
  flush + fsync.  ``{"op": "enqueue", ...}`` admits a request;
  ``{"op": "done", ...}`` marks it terminal.  A record is the unit of
  atomicity: a writer killed mid-line leaves a torn final line, which
  replay detects (it fails to parse) and discards -- by construction
  only the *last* line can be torn, and a torn ``enqueue`` was never
  acknowledged to any client.
* ``results/<id>.json`` -- the full ``result`` reply of each finished
  request, published atomically (temp + ``os.replace``), so a client
  reconnecting after a restart can ``wait`` for an id and get the exact
  message it would have streamed live.
* startup compaction -- after replay the journal is rewritten (again
  atomically) to hold only the still-pending ``enqueue`` records, so it
  cannot grow without bound across restarts.

With no ``state_dir`` the journal is a no-op shell: the service runs
memory-only (accepted work dies with the process) -- the README documents
this as the non-durable mode.
"""

from __future__ import annotations

import json
import os
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Set

from ..exec.atomicio import atomic_write_text

__all__ = ["QueueItem", "Journal"]


@dataclass
class QueueItem:
    """One admitted request, as journaled and as queued."""

    request_id: str
    lane: str
    namespace: str
    request: dict          # the normalized submit record (plain JSON data)
    enqueued_wall: float   # epoch seconds at admission (journal record only)
    #: Monotonic clock at admission: the queue-latency reference.  Wall
    #: time steps (NTP slews, manual clock changes) must never distort
    #: ``queue_seconds``, so the measurement clock is monotonic and the
    #: wall timestamp is informational.  Not serialized -- a journal
    #: replay re-enqueues with a fresh monotonic reading, measuring
    #: latency from re-admission (cross-reboot monotonic deltas are
    #: meaningless anyway).
    enqueued_mono: float = field(default_factory=time.monotonic)

    def to_json(self) -> dict:
        return {"op": "enqueue", "id": self.request_id, "lane": self.lane,
                "namespace": self.namespace, "request": self.request,
                "t": self.enqueued_wall}

    @classmethod
    def from_json(cls, record: dict) -> "QueueItem":
        return cls(request_id=record["id"], lane=record["lane"],
                   namespace=record["namespace"],
                   request=record["request"],
                   enqueued_wall=record.get("t", 0.0))


class Journal:
    """Append-only request journal + atomic result store."""

    def __init__(self, state_dir: Optional[os.PathLike]):
        self.state_dir = Path(state_dir) if state_dir is not None else None
        if self.state_dir is not None:
            self.state_dir.mkdir(parents=True, exist_ok=True)
            self.results_dir.mkdir(parents=True, exist_ok=True)

    @property
    def durable(self) -> bool:
        return self.state_dir is not None

    @property
    def journal_path(self) -> Path:
        return self.state_dir / "journal.jsonl"

    @property
    def results_dir(self) -> Path:
        return self.state_dir / "results"

    # -- appending -----------------------------------------------------------

    def _append(self, record: dict) -> None:
        if self.state_dir is None:
            return
        line = json.dumps(record, separators=(",", ":"),
                          ensure_ascii=True) + "\n"
        # Open-append-fsync-close per record: admission happens a handful
        # of times per second at most, and a freshly opened descriptor
        # cannot inherit a stale offset from a forked worker.
        with open(self.journal_path, "a", encoding="utf-8") as handle:
            handle.write(line)
            handle.flush()
            os.fsync(handle.fileno())

    def append_enqueue(self, item: QueueItem) -> None:
        """Journal an admission.  MUST complete before the request is
        acknowledged to the client (durable-then-ack)."""
        self._append(item.to_json())

    def append_done(self, request_id: str, status: str) -> None:
        self._append({"op": "done", "id": request_id, "status": status,
                      "t": time.time()})

    # -- results -------------------------------------------------------------

    def write_result(self, request_id: str, message: dict) -> None:
        """Persist a request's terminal ``result`` reply (atomic).  Write
        the result *before* the ``done`` journal record: a crash between
        the two replays the request, which is wasteful but safe; the
        opposite order could mark a request done with no result to show."""
        if self.state_dir is None:
            return
        atomic_write_text(self.results_dir / f"{request_id}.json",
                          json.dumps(message, indent=2))

    def load_result(self, request_id: str) -> Optional[dict]:
        if self.state_dir is None:
            return None
        path = self.results_dir / f"{request_id}.json"
        if not path.is_file():
            return None
        try:
            return json.loads(path.read_text())
        except ValueError:
            return None   # atomic publication makes this near-impossible;
                          # treat a damaged result as absent (re-runnable)

    def result_ids(self) -> Set[str]:
        if self.state_dir is None:
            return set()
        return {path.stem for path in self.results_dir.glob("*.json")}

    # -- replay --------------------------------------------------------------

    def replay(self) -> List[QueueItem]:
        """The still-pending admissions, in original admission order.

        Pending = journaled ``enqueue`` without a matching ``done`` *and*
        without a persisted result (the result file is authoritative: a
        crash after ``write_result`` but before ``append_done`` must not
        re-run the request).  Torn or corrupt lines are skipped.
        """
        if self.state_dir is None or not self.journal_path.is_file():
            return []
        enqueued: Dict[str, QueueItem] = {}
        done: Set[str] = set()
        with open(self.journal_path, "r", encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                try:
                    record = json.loads(line)
                    op = record["op"]
                    if op == "enqueue":
                        item = QueueItem.from_json(record)
                        enqueued.setdefault(item.request_id, item)
                    elif op == "done":
                        done.add(record["id"])
                except (ValueError, KeyError, TypeError):
                    continue   # torn final line of a killed writer
        finished = done | self.result_ids()
        return [item for item in enqueued.values()
                if item.request_id not in finished]

    def compact(self, pending: List[QueueItem]) -> None:
        """Atomically rewrite the journal to exactly ``pending``."""
        if self.state_dir is None:
            return
        lines = "".join(json.dumps(item.to_json(), separators=(",", ":"),
                                   ensure_ascii=True) + "\n"
                        for item in pending)
        atomic_write_text(self.journal_path, lines)

    def known_ids(self) -> Set[str]:
        """Every id this journal has ever acknowledged and still knows
        about: pending replays plus persisted results (used for
        duplicate-id rejection across restarts)."""
        return {item.request_id for item in self.replay()} \
            | self.result_ids()
