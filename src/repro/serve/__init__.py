"""repro.serve -- verification as a service.

An asyncio daemon that accepts verification requests -- a package (AES
corpus or inline source), a request kind (``examine`` / ``prove`` /
``refactor``), and an :class:`~repro.exec.ExecConfig` -- over a
line-delimited JSON protocol (stdio or TCP), executes them on the
existing examiner/prover/refactoring machinery, and streams per-VC
obligation events back to the client as they happen.

What the daemon adds over the batch harness (DESIGN.md §14):

* a **durable queue** -- requests are journaled before they are
  acknowledged, so a killed daemon (``kill -9`` included) replays and
  finishes in-flight work on restart;
* **priority lanes** -- interactive examiner queries dispatch ahead of
  bulk corpus proofs, under bounded queue depth with backpressure;
* **multi-tenant warm caches** -- each client namespace keeps a private
  ``ResultCache`` + ``NormalizationCache`` pair warm across requests,
  structurally isolated from every other namespace;
* **metrics** -- per-request latency, queue depth and lane utilisation,
  dumped atomically in the ``results/telemetry.json`` schema.

Entry points: ``python -m repro.serve`` (daemon),
:class:`~repro.serve.client.ServeClient` (thin synchronous client),
:class:`VerificationService` (embed the service in an asyncio app).
"""

from .client import ServeClient
from .config import DEFAULT_LANES, ServeConfig, parse_lanes
from .journal import Journal, QueueItem
from .lanes import LaneBoard, QueueFull
from .protocol import (LANES, PROTOCOL_VERSION, ProtocolError, decode_line,
                       default_lane, encode_message, normalize_submit)
from .service import RequestFailed, VerificationService, execute_request
from .tenants import TenantCaches, TenantRegistry

__all__ = [
    "PROTOCOL_VERSION", "LANES", "ProtocolError", "encode_message",
    "decode_line", "normalize_submit", "default_lane",
    "ServeConfig", "DEFAULT_LANES", "parse_lanes",
    "Journal", "QueueItem", "LaneBoard", "QueueFull",
    "TenantCaches", "TenantRegistry",
    "VerificationService", "RequestFailed", "execute_request",
    "ServeClient",
]
