"""The verification service: asyncio daemon core.

``VerificationService`` glues the pieces together (DESIGN.md §14):

* admission -- ``submit`` validates the request (protocol layer), admits
  it into a bounded priority lane (:mod:`repro.serve.lanes`), journals it
  (:mod:`repro.serve.journal`, durable-then-ack), and only then returns
  ``accepted``;
* execution -- worker tasks pull the highest-priority dispatchable item
  and run the actual proof work in a thread
  (:func:`execute_request` -- plain synchronous code over the existing
  ``Examiner`` / ``ImplementationProof`` / ``AESPipeline`` entry points,
  configured by the request's :class:`~repro.exec.ExecConfig`);
* streaming -- each request gets its own
  :class:`~repro.exec.Telemetry`; a subscription bridges every
  :class:`~repro.exec.ObligationEvent` (the exec taxonomy, unchanged)
  from the proving thread into the event loop and on to the client as
  ``event`` messages, so a client watches per-VC progress live;
* warm state -- per-namespace cache pairs
  (:mod:`repro.serve.tenants`) are handed to every execution, so repeat
  requests hit warm and tenants stay isolated;
* metrics -- request lifecycle events land in a service-level telemetry
  whose dump (``results/telemetry.json`` schema, written atomically)
  gains a ``serve`` context block: per-lane depth/served/latency
  percentiles and per-tenant cache statistics.

Blocking-IO stance: journal appends (fsync) and result publication are
small files written from the event loop -- microseconds-to-milliseconds
against proof runs of seconds; correctness (durable-then-ack ordering)
is worth far more here than the microsecond concurrency.
"""

from __future__ import annotations

import asyncio
import dataclasses
import time
from typing import Dict, List, Optional

from ..exec import events as ev
from ..exec.config import ExecConfig
from ..exec.telemetry import Telemetry, percentile
from .config import ServeConfig
from .journal import Journal, QueueItem
from .lanes import LaneBoard, QueueFull
from .protocol import PROTOCOL_VERSION, ProtocolError, normalize_submit
from .tenants import TenantCaches, TenantRegistry

__all__ = ["RequestFailed", "VerificationService", "execute_request"]


class RequestFailed(Exception):
    """A request that was validly admitted but cannot produce a result
    (bad source text, unknown subprogram, infeasible analysis).  The
    message is client-visible in the ``result`` reply."""


# ---------------------------------------------------------------------------
# Synchronous request execution (runs on a worker thread)
# ---------------------------------------------------------------------------

def _resolve_exec(request: dict, tenant: TenantCaches,
                  telemetry: Telemetry,
                  default_exec: ExecConfig) -> ExecConfig:
    """The effective ExecConfig: server defaults overlaid with the
    request's ``exec`` keys, then pinned to the tenant's result cache and
    the request's telemetry.  The pinning is the isolation boundary --
    without it the scheduler would fall back to the process-wide default
    cache shared by every tenant."""
    overlay = request.get("exec") or {}
    merged = default_exec.to_json()
    merged.update(overlay)
    config = ExecConfig.from_json(merged)
    return dataclasses.replace(config, cache=tenant.result_cache,
                               telemetry=telemetry)


def _resolve_package(request: dict):
    """``(typed package, proof scripts)`` for the request."""
    package = request["package"]
    if "corpus" in package:
        from ..aes.annotations import annotated_package
        typed = annotated_package()
        scripts = {}
        if request.get("scripts", True):
            from ..aes.proof_scripts import aes_proof_scripts
            scripts = aes_proof_scripts()
        return typed, scripts
    from ..lang import analyze, parse_package
    try:
        typed = analyze(parse_package(package["source"]))
    except Exception as exc:   # noqa: BLE001 - frontend fault boundary:
        # lexer/parser/typechecker diagnostics become the client's error
        raise RequestFailed(f"package does not analyze: {exc}")
    return typed, {}


def _resolve_subprograms(request: dict, typed) -> Optional[List[str]]:
    names = request.get("subprograms")
    if names is None:
        return None
    unknown = [name for name in names if name not in typed.signatures]
    if unknown:
        raise RequestFailed(f"unknown subprograms: {sorted(unknown)}")
    return list(names)


def _run_examine(request: dict, typed, tenant: TenantCaches,
                 telemetry: Telemetry) -> dict:
    """An interactive examiner query: generate + simplify VCs, streaming
    one submitted/started/finished event triple per subprogram (kind
    ``examine`` -- the exec taxonomy applied to analysis work)."""
    from ..vcgen import Examiner
    names = _resolve_subprograms(request, typed)
    if names is None:
        names = [sp.name for sp in typed.package.subprograms]
    examiner = Examiner(typed, shared=tenant.norm_cache)
    subprograms = []
    started = time.perf_counter()
    for name in names:
        telemetry.record(ev.SUBMITTED, "examine", name)
        telemetry.record(ev.STARTED, "examine", name)
        t0 = time.perf_counter()
        report = examiner.examine([name])
        analysis = report.per_subprogram[name]
        telemetry.record(ev.FINISHED, "examine", name,
                         wall=time.perf_counter() - t0,
                         detail="feasible" if analysis.feasible
                         else "infeasible")
        subprograms.append({
            "name": name,
            "feasible": analysis.feasible,
            "failure_reason": analysis.failure_reason,
            "vc_count": analysis.vc_count,
            "discharged_by_simplifier": analysis.discharged_count,
            "generated_bytes": analysis.generated_bytes,
            "simplified_bytes": analysis.simplified_bytes,
            "max_residue_lines": analysis.max_residue_lines,
        })
    return {
        "kind": "examine",
        "feasible": all(s["feasible"] for s in subprograms),
        "vc_count": sum(s["vc_count"] for s in subprograms),
        "discharged_by_simplifier": sum(s["discharged_by_simplifier"]
                                        for s in subprograms),
        "subprograms": subprograms,
        "wall_seconds": time.perf_counter() - started,
    }


def _run_prove(request: dict, typed, scripts, tenant: TenantCaches,
               exec_config: ExecConfig) -> dict:
    """A proof request: the full implementation-proof session, warm
    caches included.  The verdict list is the serve layer's unit of
    bit-identity: it must match the batch harness VC for VC."""
    from ..prover import ImplementationProof
    names = _resolve_subprograms(request, typed)
    incremental = bool(request.get("incremental"))
    if incremental and tenant.manifest_store is None:
        # Manifests live under state_dir/manifest/<namespace>; without a
        # state dir there is nowhere to persist or read one.  Loud
        # failure, same stance as the flag validators.
        raise RequestFailed("incremental prove requires a durable daemon "
                            "(--state-dir)")
    proof = ImplementationProof(typed, scripts=scripts, exec=exec_config,
                                norm_cache=tenant.norm_cache,
                                manifest=tenant.manifest_store,
                                incremental=incremental)
    result = proof.run(names)
    verdicts = [{
        "subprogram": o.vc.subprogram,
        "vc": o.vc.name,
        "vc_kind": o.vc.kind,
        "stage": o.stage,
        "proved": o.result.proved if o.result is not None else None,
        "method": o.result.method if o.result is not None else None,
    } for o in result.outcomes]
    payload = {
        "kind": "prove",
        "feasible": result.feasible,
        "total_vcs": result.total_vcs,
        "auto_discharged": result.auto_discharged,
        "interactive_discharged": result.interactive_discharged,
        "undischarged": len(result.undischarged),
        "auto_percent": result.auto_percent,
        "all_proved": result.all_proved,
        "verdicts": verdicts,
        "wall_seconds": result.wall_seconds,
    }
    if result.incremental is not None:
        payload["incremental"] = result.incremental.to_json()
    return payload


def _run_refactor(request: dict, exec_config: ExecConfig) -> dict:
    """A refactoring-chain request over the AES corpus: apply the named
    prefix of the 14 transformation blocks, each application checked by
    its semantics-preservation theorem (differential trials run through
    the scheduler, so their events stream like any obligation's)."""
    from ..aes.blocks import AESPipeline
    from ..refactor.engine import TransformationError
    params = request.get("params") or {}
    upto = params.get("upto", 14)
    trials = params.get("trials", 6)
    pipeline = AESPipeline(check="differential", trials=trials,
                           exec=exec_config)
    try:
        blocks = pipeline.run(upto=upto)
    except TransformationError as exc:
        raise RequestFailed(f"refactoring chain failed: {exc}")
    return {
        "kind": "refactor",
        "upto": upto,
        "trials": trials,
        "blocks": [{
            "index": block.index,
            "title": block.title,
            "transformations": block.transformation_count,
            "preserved": all(app.preserved
                             for app in block.applications),
        } for block in blocks],
        "package_chars": len(blocks[-1].package_text) if blocks else 0,
    }


def execute_request(request: dict, tenant: TenantCaches,
                    telemetry: Telemetry,
                    default_exec: ExecConfig) -> dict:
    """Execute one normalized request synchronously and return its result
    payload.  Everything here is ordinary batch-harness code -- the serve
    layer adds only the cache pinning and the telemetry bridge, which is
    why daemon verdicts are bit-identical to the batch reference."""
    try:
        exec_config = _resolve_exec(request, tenant, telemetry,
                                    default_exec)
    except (ValueError, TypeError) as exc:
        raise RequestFailed(f"bad exec config: {exc}")
    kind = request["kind"]
    if kind == "refactor":
        return _run_refactor(request, exec_config)
    typed, scripts = _resolve_package(request)
    if kind == "examine":
        return _run_examine(request, typed, tenant, telemetry)
    return _run_prove(request, typed, scripts, tenant, exec_config)


# ---------------------------------------------------------------------------
# The asyncio service
# ---------------------------------------------------------------------------

class VerificationService:
    """Admission, durable queueing, execution, streaming, metrics.

    Lifecycle: ``await start()`` (replays the journal, spawns workers),
    then ``submit`` / ``wait`` / ``status`` from connection handlers or
    direct callers, then ``await stop()`` (drains running requests;
    pending ones stay journaled for the next start).  All methods are
    event-loop-side; the proof work itself runs on threads.
    """

    def __init__(self, config: Optional[ServeConfig] = None):
        self.config = config if config is not None else ServeConfig()
        self.journal = Journal(self.config.state_dir)
        self.board = LaneBoard(self.config.lanes, self.config.max_queue)
        self.tenants = TenantRegistry(
            state_dir=self.config.state_dir,
            cache_memory_entries=self.config.cache_memory_entries,
            norm_entries=self.config.norm_cache_entries)
        #: Service-level request telemetry: one submitted/started/
        #: finished-or-errored triple per request (kind ``request``), so
        #: queue depth, latency percentiles and failure counts fall out
        #: of the standard ExecStats machinery.
        self.telemetry = Telemetry()
        self.shutdown_requested = asyncio.Event()
        self._results: Dict[str, dict] = {}
        self._known_ids: set = set()
        self._subscribers: Dict[str, List[asyncio.Queue]] = {}
        self._watchers: Dict[str, List[asyncio.Future]] = {}
        self._latencies: Dict[str, List[float]] = \
            {lane: [] for lane in self.board.capacity}
        self._workers: List[asyncio.Task] = []
        self._seq = 0
        self._started = False
        self._replayed = 0

    # -- lifecycle -----------------------------------------------------------

    async def start(self) -> int:
        """Replay the journal, compact it, spawn workers.  Returns the
        number of replayed (re-enqueued) requests."""
        assert not self._started
        self._started = True
        pending = self.journal.replay()
        self.journal.compact(pending)
        self._known_ids = self.journal.known_ids() | set(self._results)
        for item in pending:
            self.board.admit(item, force=True)
            self.telemetry.record(ev.SUBMITTED, "request", item.request_id,
                                  detail=f"{item.lane},replayed")
        self._replayed = len(pending)
        worker_count = sum(self.board.capacity.values())
        self._workers = [asyncio.create_task(self._worker())
                         for _ in range(worker_count)]
        return self._replayed

    async def stop(self) -> None:
        """Graceful stop: no new dispatch, running requests finish and
        publish, queued requests stay journaled for the next start."""
        self.board.close()
        if self._workers:
            await asyncio.gather(*self._workers)
        self._dump_telemetry()

    def request_shutdown(self) -> None:
        self.shutdown_requested.set()

    # -- admission -----------------------------------------------------------

    def _new_id(self) -> str:
        while True:
            self._seq += 1
            candidate = f"r{self._seq:05d}"
            if candidate not in self._known_ids:
                return candidate

    async def submit(self, message: dict,
                     outbox: Optional[asyncio.Queue] = None) -> dict:
        """Admit one ``submit`` message; returns the ``accepted`` reply.
        Raises :class:`~repro.serve.protocol.ProtocolError` on validation
        failure, duplicate id, or backpressure.  ``outbox`` (when given)
        receives the request's ``event`` stream and ``result``."""
        request = normalize_submit(message)
        request_id = request["id"] or self._new_id()
        if request_id in self._known_ids:
            raise ProtocolError("duplicate_id",
                                f"request id {request_id!r} already exists",
                                request_id)
        request["id"] = request_id
        item = QueueItem(request_id=request_id, lane=request["lane"],
                         namespace=request["namespace"], request=request,
                         enqueued_wall=time.time())
        try:
            depth = self.board.admit(item)
        except QueueFull as exc:
            raise ProtocolError("backpressure", str(exc), request_id)
        try:
            self.journal.append_enqueue(item)   # durable-then-ack
        except BaseException:
            self.board.retract(item)
            raise
        self._known_ids.add(request_id)
        if outbox is not None:
            self._subscribers.setdefault(request_id, []).append(outbox)
        self.telemetry.record(ev.SUBMITTED, "request", request_id,
                              detail=item.lane)
        return {"reply": "accepted", "id": request_id, "lane": item.lane,
                "namespace": item.namespace, "queue_depth": depth,
                "durable": self.journal.durable}

    # -- waiting / status ----------------------------------------------------

    async def wait(self, request_id: str) -> dict:
        """The terminal ``result`` reply for ``request_id`` -- immediately
        if it already finished (this process or, via the result store, a
        previous one), else once it completes."""
        cached = self._results.get(request_id)
        if cached is not None:
            return cached
        stored = self.journal.load_result(request_id)
        if stored is not None:
            return stored
        if request_id not in self._known_ids:
            raise ProtocolError("unknown_id",
                                f"no request {request_id!r}", request_id)
        future = asyncio.get_running_loop().create_future()
        self._watchers.setdefault(request_id, []).append(future)
        return await future

    def status(self) -> dict:
        lanes = self.board.snapshot()
        for lane, samples in self._latencies.items():
            lanes[lane]["latency_p50_seconds"] = percentile(samples, 0.50)
            lanes[lane]["latency_p95_seconds"] = percentile(samples, 0.95)
        return {
            "reply": "status",
            "protocol": PROTOCOL_VERSION,
            "durable": self.journal.durable,
            "replayed": self._replayed,
            "lanes": lanes,
            "pending": self.board.pending_ids(),
            "namespaces": len(self.tenants),
            "tenants": self.tenants.snapshot(),
            "results_held": len(self._results),
        }

    # -- execution -----------------------------------------------------------

    async def _worker(self) -> None:
        while True:
            picked = await self.board.next_item()
            if picked is None:
                return
            lane, item = picked
            try:
                await self._run_item(lane, item)
            finally:
                self.board.task_done(lane)

    async def _run_item(self, lane: str, item: QueueItem) -> None:
        request_id = item.request_id
        loop = asyncio.get_running_loop()
        self.telemetry.record(ev.STARTED, "request", request_id,
                              detail=lane)
        request_telemetry = Telemetry()

        def forward(event, _rid=request_id):
            loop.call_soon_threadsafe(self._publish_event, _rid, event)

        subscription = request_telemetry.subscribe(forward)
        tenant = self.tenants.get(item.namespace)
        # Monotonic delta: wall-clock steps between admission and dispatch
        # must not distort the latency (the old wall-time delta needed a
        # max(0, ...) clamp that silently swallowed backward steps and
        # just as silently inflated forward ones).
        queue_seconds = time.monotonic() - item.enqueued_mono
        started = time.perf_counter()
        try:
            payload = await asyncio.to_thread(
                execute_request, item.request, tenant, request_telemetry,
                self.config.default_exec)
            status, error = "ok", None
        except RequestFailed as exc:
            status, error, payload = "error", str(exc), None
        except Exception as exc:   # noqa: BLE001 - worker fault boundary:
            # an unexpected execution failure must become a client-visible
            # error reply, never a dead worker slot
            status, payload = "error", None
            error = f"{type(exc).__name__}: {exc}"
        finally:
            subscription.close()
        run_seconds = time.perf_counter() - started
        tenant.requests_served += 1

        message = {
            "reply": "result", "id": request_id, "status": status,
            "kind": item.request["kind"], "lane": lane,
            "namespace": item.namespace,
            "queue_seconds": queue_seconds, "run_seconds": run_seconds,
            "exec_stats": request_telemetry.stats().to_json(),
        }
        if payload is not None:
            message["result"] = payload
        if error is not None:
            message["error"] = error

        self.journal.write_result(request_id, message)
        self.journal.append_done(request_id, status)
        self._results[request_id] = message
        self._latencies[lane].append(queue_seconds + run_seconds)
        self.telemetry.record(
            ev.FINISHED if status == "ok" else ev.ERRORED, "request",
            request_id, wall=run_seconds, detail=lane)
        self._publish_result(request_id, message)
        self._dump_telemetry()

    # -- streaming -----------------------------------------------------------

    def _publish_event(self, request_id: str, event) -> None:
        outboxes = self._subscribers.get(request_id)
        if not outboxes:
            return
        message = {"reply": "event", "id": request_id,
                   "event": event.to_json()}
        for outbox in outboxes:
            outbox.put_nowait(message)

    def _publish_result(self, request_id: str, message: dict) -> None:
        for outbox in self._subscribers.pop(request_id, []):
            outbox.put_nowait(message)
        for future in self._watchers.pop(request_id, []):
            if not future.done():
                future.set_result(message)

    # -- metrics -------------------------------------------------------------

    def _dump_telemetry(self) -> None:
        """Atomically publish the service telemetry (the harness's
        ``results/telemetry.json`` schema plus a ``serve`` context block)
        after every terminal request and at shutdown."""
        out = self.config.telemetry_out
        if out is None:
            return
        lanes = self.board.snapshot()
        for lane, samples in self._latencies.items():
            lanes[lane]["latency_p50_seconds"] = percentile(samples, 0.50)
            lanes[lane]["latency_p95_seconds"] = percentile(samples, 0.95)
        self.telemetry.dump_json(out, context={
            "serve": {
                "durable": self.journal.durable,
                "replayed": self._replayed,
                "max_queue": self.config.max_queue,
                "lanes": lanes,
                "namespaces": len(self.tenants),
                "tenants": self.tenants.snapshot(),
            },
            "default_exec": self.config.default_exec.to_json(),
        })
