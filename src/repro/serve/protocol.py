"""The serve wire protocol: line-delimited JSON over stdio or TCP.

One JSON object per ``\\n``-terminated line, in both directions.  Client
messages carry an ``op``; server messages carry a ``reply``.  The full
schema (with examples) is documented in README "Verification as a
service" and DESIGN.md §14.

Client → server ops
-------------------
``ping``      liveness probe → ``pong``.
``status``    queue depths, lanes, tenants → ``status``.
``submit``    enqueue a verification request → ``accepted`` (then
              streamed ``event`` messages, then a terminal ``result``).
``wait``      (re)attach to a request by id → its ``result`` when done
              (immediately, if it already finished -- the reconnect path
              after a daemon restart).
``shutdown``  graceful stop → ``bye``.

Server → client replies
-----------------------
``pong`` / ``status`` / ``accepted`` / ``event`` / ``result`` / ``bye``
and ``error`` (with a machine-readable ``code``:
``bad_request`` | ``backpressure`` | ``duplicate_id`` | ``unknown_id`` |
``protocol_mismatch``).

Versioning: the framing primitives, error envelope, and
``PROTOCOL_VERSION`` live in the shared :mod:`repro.protocol` module
(the proof-farm coordinator speaks the same generation).  Clients may
advertise ``"protocol": N`` on any message; a mismatched version is
rejected with ``protocol_mismatch``, an absent field is tolerated.

A ``submit`` names a package (the AES corpus or inline MiniAda source),
a request ``kind`` (``examine`` | ``prove`` | ``refactor``), an optional
tenant ``namespace`` (per-tenant warm caches; the default namespace is
``"public"``), an optional priority ``lane`` (``interactive`` | ``bulk``;
defaulted from the kind), and an optional ``exec`` object -- the
JSON-portable subset of :class:`~repro.exec.ExecConfig`
(:meth:`~repro.exec.ExecConfig.from_json`; ``cache``/``telemetry`` never
travel, so a client cannot name another tenant's cache).
"""

from __future__ import annotations

import re
from typing import Optional

from ..exec.config import ExecConfig
from ..protocol import (ERROR_CODES, MAX_LINE_BYTES, PROTOCOL_VERSION,
                        ProtocolError, check_protocol_version,
                        encode_message, parse_json_line)

__all__ = [
    "PROTOCOL_VERSION", "LANES", "LANE_PRIORITY", "REQUEST_KINDS", "OPS",
    "ERROR_CODES", "ProtocolError", "decode_line", "encode_message",
    "normalize_submit", "default_lane",
]

#: Priority lanes, highest priority first.  ``interactive`` is meant for
#: examiner queries a human is waiting on; ``bulk`` for corpus proofs.
LANES = ("interactive", "bulk")
LANE_PRIORITY = LANES   # dispatch preference order

REQUEST_KINDS = ("examine", "prove", "refactor")
OPS = ("ping", "status", "submit", "wait", "shutdown")

#: Kind → lane when the client does not pick one: examiner queries are
#: interactive by nature, proofs and refactoring chains are bulk work.
_DEFAULT_LANES = {"examine": "interactive", "prove": "bulk",
                  "refactor": "bulk"}

#: Request ids (client-chosen or server-assigned) are path-safe: they
#: name journal result files.
_ID_RE = re.compile(r"^[A-Za-z0-9][A-Za-z0-9._-]{0,63}$")
#: Tenant namespaces name per-tenant cache directories, same discipline.
_NAMESPACE_RE = re.compile(r"^[A-Za-z0-9][A-Za-z0-9._-]{0,63}$")

_MAX_LINE_BYTES = MAX_LINE_BYTES   # an inline MiniAda package fits easily


def decode_line(line: str) -> dict:
    """Parse one client line into a message dict, or raise
    :class:`ProtocolError` (oversize, non-JSON, non-object, bad op,
    version mismatch).  A client that advertises a ``protocol`` field is
    held to it; one that omits it is accepted (version-1 clients predate
    the field)."""
    message = parse_json_line(line, max_bytes=_MAX_LINE_BYTES)
    op = message.get("op")
    if op not in OPS:
        raise ProtocolError("bad_request",
                            f"op must be one of {list(OPS)}, got {op!r}")
    check_protocol_version(message.get("protocol"), surface="serve")
    return message


def default_lane(kind: str) -> str:
    return _DEFAULT_LANES[kind]


def _require_str(message: dict, field: str, pattern: re.Pattern) -> str:
    value = message[field]
    if not isinstance(value, str) or not pattern.match(value):
        raise ProtocolError(
            "bad_request",
            f"{field} must be a short path-safe string "
            f"([A-Za-z0-9._-], starting alphanumeric), got {value!r}")
    return value


def normalize_submit(message: dict,
                     request_id: Optional[str] = None) -> dict:
    """Validate a ``submit`` message and return the normalized request
    record the service enqueues (and journals).

    The record is plain JSON data -- the ``exec`` object is validated by
    round-tripping through :meth:`ExecConfig.from_json` but *stored* as
    its dict form, so a journaled request replays across daemon restarts
    without pickling live objects.
    """
    kind = message.get("kind")
    if kind not in REQUEST_KINDS:
        raise ProtocolError(
            "bad_request",
            f"kind must be one of {list(REQUEST_KINDS)}, got {kind!r}",
            request_id)

    lane = message.get("lane", default_lane(kind))
    if lane not in LANES:
        raise ProtocolError(
            "bad_request",
            f"lane must be one of {list(LANES)}, got {lane!r}", request_id)

    namespace = message.get("namespace", "public")
    if not isinstance(namespace, str) or not _NAMESPACE_RE.match(namespace):
        raise ProtocolError(
            "bad_request",
            f"namespace must be a short path-safe string, "
            f"got {namespace!r}", request_id)

    package = message.get("package")
    if not isinstance(package, dict) or \
            ("corpus" in package) == ("source" in package):
        raise ProtocolError(
            "bad_request",
            'package must be {"corpus": "aes"} or {"source": "<MiniAda>"}',
            request_id)
    if "corpus" in package:
        if package["corpus"] != "aes":
            raise ProtocolError(
                "bad_request",
                f'unknown corpus {package["corpus"]!r} (known: "aes")',
                request_id)
        package = {"corpus": "aes"}
    else:
        source = package["source"]
        if not isinstance(source, str) or not source.strip():
            raise ProtocolError("bad_request",
                                "package.source must be non-empty MiniAda "
                                "source text", request_id)
        package = {"source": source}
        if kind == "refactor":
            raise ProtocolError(
                "bad_request",
                "refactor requests need a named corpus chain "
                '(package {"corpus": "aes"})', request_id)

    subprograms = message.get("subprograms")
    if subprograms is not None:
        if not isinstance(subprograms, list) or not subprograms or \
                not all(isinstance(n, str) and n for n in subprograms):
            raise ProtocolError(
                "bad_request",
                "subprograms must be a non-empty list of names",
                request_id)

    scripts = message.get("scripts", True)
    if not isinstance(scripts, bool):
        raise ProtocolError("bad_request",
                            f"scripts must be a boolean, got {scripts!r}",
                            request_id)

    incremental = message.get("incremental", False)
    if not isinstance(incremental, bool):
        raise ProtocolError(
            "bad_request",
            f"incremental must be a boolean, got {incremental!r}",
            request_id)
    if incremental and kind != "prove":
        raise ProtocolError(
            "bad_request",
            f"incremental applies to prove requests only, not {kind!r}",
            request_id)

    exec_json = message.get("exec", {})
    try:
        ExecConfig.from_json(exec_json)   # validation only; stored as dict
    except (ValueError, TypeError) as exc:
        raise ProtocolError("bad_request", f"bad exec config: {exc}",
                            request_id)

    params = message.get("params", {})
    if not isinstance(params, dict):
        raise ProtocolError("bad_request",
                            f"params must be an object, got {params!r}",
                            request_id)
    known_params = {"upto", "trials"}
    unknown = sorted(set(params) - known_params)
    if unknown:
        raise ProtocolError("bad_request",
                            f"unknown params keys: {unknown} "
                            f"(allowed: {sorted(known_params)})",
                            request_id)
    for name, lo, hi in (("upto", 0, 14), ("trials", 1, 10000)):
        if name in params:
            value = params[name]
            if not isinstance(value, int) or isinstance(value, bool) or \
                    not lo <= value <= hi:
                raise ProtocolError(
                    "bad_request",
                    f"params.{name} must be an integer in "
                    f"[{lo}, {hi}], got {value!r}", request_id)

    if "id" in message:
        request_id = _require_str(message, "id", _ID_RE)

    return {
        "id": request_id,          # None → service assigns one
        "kind": kind,
        "lane": lane,
        "namespace": namespace,
        "package": package,
        "subprograms": subprograms,
        "scripts": scripts,
        "incremental": incremental,
        "exec": exec_json,
        "params": params,
    }
