"""Admission control: two priority lanes with bounded depth and
priority dispatch.

The service owns one :class:`LaneBoard`.  Admission (``admit``) is
synchronous and bounded: a lane whose pending depth has reached
``max_queue`` rejects with :class:`QueueFull`, which the protocol layer
renders as an ``error`` reply with code ``backpressure`` -- the client
is told to retry rather than the daemon buffering unboundedly.  Replayed
journal items bypass the bound (they were admitted before the restart;
re-admission must not drop durable work).

Dispatch (``next_item``) is what makes ``interactive`` preempt ``bulk``:
every worker asks for the highest-priority lane that has both pending
work *and* free capacity, so an interactive examiner query never waits
behind queued bulk corpus proofs -- at worst it waits for one in-flight
request of its own lane.  Per-lane capacity (the ``--lanes`` worker
counts) caps how many requests of each lane run concurrently; a lane
with capacity 0 is admit-only (its work stays queued -- used by drain
and in tests to freeze a lane).
"""

from __future__ import annotations

import asyncio
from collections import deque
from typing import Dict, Optional, Tuple

from .journal import QueueItem
from .protocol import LANE_PRIORITY, LANES

__all__ = ["QueueFull", "LaneBoard"]


class QueueFull(Exception):
    """Admission rejected: the lane's pending queue is at its bound."""

    def __init__(self, lane: str, depth: int, max_queue: int):
        super().__init__(f"lane {lane!r} queue full "
                         f"({depth}/{max_queue} pending)")
        self.lane = lane
        self.depth = depth
        self.max_queue = max_queue


class LaneBoard:
    """Bounded per-lane FIFO queues + priority dispatch with per-lane
    concurrency caps.  Single-event-loop discipline: every method is
    called from the service's loop (admission and dispatch never race
    across threads)."""

    def __init__(self, capacity: Dict[str, int], max_queue: int):
        assert set(capacity) <= set(LANES), capacity
        self.capacity = {lane: int(capacity.get(lane, 0)) for lane in LANES}
        self.max_queue = max_queue
        self._pending: Dict[str, "deque[QueueItem]"] = \
            {lane: deque() for lane in LANES}
        self._running: Dict[str, int] = {lane: 0 for lane in LANES}
        self._served: Dict[str, int] = {lane: 0 for lane in LANES}
        self._max_depth: Dict[str, int] = {lane: 0 for lane in LANES}
        self._wakeup = asyncio.Event()
        self._closed = False

    # -- admission -----------------------------------------------------------

    def admit(self, item: QueueItem, force: bool = False) -> int:
        """Enqueue; returns the lane depth after admission.  ``force``
        bypasses the depth bound (journal replay)."""
        lane = item.lane
        depth = len(self._pending[lane])
        if not force and depth >= self.max_queue:
            raise QueueFull(lane, depth, self.max_queue)
        self._pending[lane].append(item)
        depth += 1
        self._max_depth[lane] = max(self._max_depth[lane], depth)
        self._wakeup.set()
        return depth

    def retract(self, item: QueueItem) -> None:
        """Undo an admission that could not be journaled (best-effort:
        the item is simply removed from its pending queue again)."""
        try:
            self._pending[item.lane].remove(item)
        except ValueError:
            pass

    # -- dispatch ------------------------------------------------------------

    def _pick(self) -> Optional[Tuple[str, QueueItem]]:
        for lane in LANE_PRIORITY:
            if self._pending[lane] and \
                    self._running[lane] < self.capacity[lane]:
                return lane, self._pending[lane].popleft()
        return None

    async def next_item(self) -> Optional[Tuple[str, QueueItem]]:
        """The next dispatchable item, preferring high-priority lanes;
        blocks until one exists.  Returns None once closed and drained of
        dispatchable work (worker shutdown)."""
        while True:
            picked = self._pick()
            if picked is not None:
                lane, item = picked
                self._running[lane] += 1
                return lane, item
            if self._closed:
                return None
            self._wakeup.clear()
            await self._wakeup.wait()

    def task_done(self, lane: str) -> None:
        self._running[lane] -= 1
        self._served[lane] += 1
        self._wakeup.set()   # capacity freed: re-check pending work

    def close(self) -> None:
        """Stop dispatching: workers drain out of :meth:`next_item`.
        Pending items stay queued (and journaled -- they replay on the
        next start)."""
        self._closed = True
        self._wakeup.set()

    # -- introspection -------------------------------------------------------

    def depth(self, lane: str) -> int:
        return len(self._pending[lane])

    def running(self, lane: str) -> int:
        return self._running[lane]

    def pending_ids(self) -> Dict[str, list]:
        return {lane: [item.request_id for item in self._pending[lane]]
                for lane in LANES}

    def snapshot(self) -> Dict[str, dict]:
        """Per-lane metrics for ``status`` replies and telemetry dumps."""
        return {lane: {
            "workers": self.capacity[lane],
            "depth": len(self._pending[lane]),
            "running": self._running[lane],
            "served": self._served[lane],
            "max_depth": self._max_depth[lane],
            "max_queue": self.max_queue,
        } for lane in LANES}
