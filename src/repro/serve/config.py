"""Serve-daemon configuration (the validated form of the CLI flags)."""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Optional

from ..exec.config import ExecConfig
from .protocol import LANES

__all__ = ["ServeConfig", "DEFAULT_LANES", "parse_lanes"]

#: Default per-lane concurrency: one interactive slot, one bulk slot.
DEFAULT_LANES: Dict[str, int] = {"interactive": 1, "bulk": 1}


def parse_lanes(spec: str) -> Dict[str, int]:
    """Parse a ``--lanes`` value like ``interactive=2,bulk=1``.

    Every entry must name a known lane (once) with a non-negative integer
    worker count; unmentioned lanes get 0 workers; at least one worker
    must exist in total.  Raises ``ValueError`` with a message naming the
    offending entry (the CLI maps this to a ``SystemExit``, the same
    discipline as ``--jobs 0``).
    """
    lanes = {lane: 0 for lane in LANES}
    seen = set()
    entries = [entry for entry in spec.split(",") if entry.strip()]
    if not entries:
        raise ValueError(f"empty lanes spec {spec!r} "
                         f"(expected e.g. 'interactive=1,bulk=1')")
    for entry in entries:
        name, sep, raw = entry.strip().partition("=")
        if not sep:
            raise ValueError(f"lanes entry {entry!r} is not NAME=COUNT")
        if name not in LANES:
            raise ValueError(f"unknown lane {name!r} "
                             f"(known: {', '.join(LANES)})")
        if name in seen:
            raise ValueError(f"lane {name!r} given twice")
        seen.add(name)
        try:
            count = int(raw)
        except ValueError:
            raise ValueError(f"lane {name!r} count must be an integer, "
                             f"got {raw!r}")
        if count < 0:
            raise ValueError(f"lane {name!r} count must be >= 0, "
                             f"got {count}")
        lanes[name] = count
    if sum(lanes.values()) < 1:
        raise ValueError(f"lanes spec {spec!r} grants zero workers in "
                         f"total; at least one lane needs capacity")
    return lanes


@dataclass
class ServeConfig:
    """How the daemon admits, persists, and executes requests.

    ``state_dir``       journal + per-tenant disk caches + result store;
                        None runs memory-only (no durability).
    ``lanes``           per-lane concurrent-request capacity; a lane with
                        0 capacity is admit-only (see ``--lanes``).
    ``max_queue``       pending-request bound per lane; admission beyond
                        it is rejected with a ``backpressure`` error.
    ``default_exec``    the :class:`~repro.exec.ExecConfig` applied to
                        requests that do not carry one.
    ``telemetry_out``   where request/lane metrics are dumped (atomic
                        JSON, same schema as the harness's
                        ``results/telemetry.json``); None disables.
    ``cache_memory_entries`` / ``norm_cache_entries``
                        per-tenant cache bounds (None: library defaults).
    """

    state_dir: Optional[Path] = None
    lanes: Dict[str, int] = field(
        default_factory=lambda: dict(DEFAULT_LANES))
    max_queue: int = 64
    default_exec: ExecConfig = field(default_factory=ExecConfig)
    telemetry_out: Optional[Path] = None
    cache_memory_entries: Optional[int] = None
    norm_cache_entries: Optional[int] = None

    def __post_init__(self):
        if self.state_dir is not None:
            self.state_dir = Path(self.state_dir)
        if self.telemetry_out is not None:
            self.telemetry_out = Path(self.telemetry_out)
        unknown = sorted(set(self.lanes) - set(LANES))
        if unknown:
            raise ValueError(f"unknown lanes: {unknown} "
                             f"(known: {list(LANES)})")
        lanes = {lane: self.lanes.get(lane, 0) for lane in LANES}
        for lane, count in lanes.items():
            if not isinstance(count, int) or isinstance(count, bool) \
                    or count < 0:
                raise ValueError(f"lane {lane!r} capacity must be a "
                                 f"non-negative int, got {count!r}")
        if sum(lanes.values()) < 1:
            raise ValueError("at least one lane needs capacity >= 1 "
                             "(a daemon with zero workers serves nothing)")
        self.lanes = lanes
        if not isinstance(self.max_queue, int) \
                or isinstance(self.max_queue, bool) or self.max_queue < 1:
            # The same loud-failure stance as --jobs 0: a typo'd bound of
            # 0 would reject every submit as backpressure.
            raise ValueError(f"max_queue must be >= 1, "
                             f"got {self.max_queue!r}")
        if not isinstance(self.default_exec, ExecConfig):
            raise TypeError(f"default_exec must be an ExecConfig, got "
                            f"{type(self.default_exec).__name__}")
