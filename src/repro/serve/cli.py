"""Command line for the verification daemon.

Run as::

    python -m repro.serve --stdio --state-dir state/
    python -m repro.serve --port 0 --state-dir state/ \\
        --lanes interactive=2,bulk=1 --max-queue 32

Flags (every validation failure is a loud ``SystemExit`` naming the bad
value -- the same stance as the harness's ``--jobs 0`` rejection):

``--stdio``             serve one client over stdin/stdout (default when
                        no ``--port`` is given).
``--host`` / ``--port`` serve TCP; ``--port 0`` binds an ephemeral port,
                        announced as a ``listening`` line on stdout.
``--state-dir DIR``     durable mode: journal, result store, per-tenant
                        disk caches live here.  Omit for memory-only.
``--lanes SPEC``        per-lane worker counts, e.g. ``interactive=2,bulk=1``
                        (a lane at 0 is admit-only; total must be >= 1).
``--max-queue N``       pending-depth bound per lane (N >= 1); beyond it
                        submits are rejected with ``backpressure``.
``--telemetry-out F``   dump request/lane metrics to F (atomic JSON).
``--jobs`` / ``--backend`` / ``--timeout``
                        the server-side default :class:`ExecConfig` for
                        requests that do not carry their own ``exec``.
"""

from __future__ import annotations

import asyncio
import sys
from pathlib import Path
from typing import Optional

from ..exec.config import ExecConfig
from ..exec.scheduler import BACKENDS
from .config import DEFAULT_LANES, ServeConfig, parse_lanes
from .net import serve_stdio, serve_tcp
from .service import VerificationService

__all__ = ["main", "build_config"]


def _flag_value(argv, flag: str) -> Optional[str]:
    raw = None
    for i, arg in enumerate(argv):
        if arg == flag and i + 1 < len(argv):
            raw = argv[i + 1]
        elif arg.startswith(flag + "="):
            raw = arg.split("=", 1)[1]
    return raw


def _parse_lanes_flag(argv) -> dict:
    raw = _flag_value(argv, "--lanes")
    if raw is None:
        return dict(DEFAULT_LANES)
    try:
        return parse_lanes(raw)
    except ValueError as exc:
        raise SystemExit(f"error: --lanes: {exc}")


def _parse_max_queue(argv) -> int:
    raw = _flag_value(argv, "--max-queue")
    if raw is None:
        return 64
    try:
        value = int(raw)
    except ValueError:
        raise SystemExit(f"error: --max-queue expects an integer, "
                         f"got {raw!r}")
    if value < 1:
        # Same loud-failure stance as --jobs 0: a bound of 0 would
        # reject every submit as backpressure.
        raise SystemExit(f"error: --max-queue must be >= 1, got {raw!r}")
    return value


def _parse_port(argv) -> Optional[int]:
    raw = _flag_value(argv, "--port")
    if raw is None:
        return None
    try:
        value = int(raw)
    except ValueError:
        raise SystemExit(f"error: --port expects an integer, got {raw!r}")
    if not 0 <= value <= 65535:
        raise SystemExit(f"error: --port must be in [0, 65535], "
                         f"got {raw!r}")
    return value


def _parse_default_exec(argv) -> ExecConfig:
    jobs_raw = _flag_value(argv, "--jobs")
    jobs = 1
    if jobs_raw is not None:
        try:
            jobs = int(jobs_raw)
        except ValueError:
            raise SystemExit(f"error: --jobs expects an integer, "
                             f"got {jobs_raw!r}")
        if jobs < 1:
            raise SystemExit(f"error: --jobs must be >= 1, got {jobs_raw!r}")
    backend = _flag_value(argv, "--backend") or "thread"
    if backend not in BACKENDS:
        raise SystemExit(f"error: --backend expects one of "
                         f"{', '.join(sorted(BACKENDS))}, got {backend!r}")
    timeout_raw = _flag_value(argv, "--timeout")
    timeout = None
    if timeout_raw is not None:
        try:
            timeout = float(timeout_raw)
        except ValueError:
            raise SystemExit(f"error: --timeout expects seconds, "
                             f"got {timeout_raw!r}")
        if timeout <= 0:
            raise SystemExit(f"error: --timeout must be positive, "
                             f"got {timeout_raw!r}")
    return ExecConfig(jobs=jobs, backend=backend, timeout_seconds=timeout)


def build_config(argv) -> ServeConfig:
    """The validated :class:`ServeConfig` for ``argv`` (exposed for the
    flag-validation unit tests)."""
    state_dir = _flag_value(argv, "--state-dir")
    telemetry_out = _flag_value(argv, "--telemetry-out")
    return ServeConfig(
        state_dir=Path(state_dir) if state_dir else None,
        lanes=_parse_lanes_flag(argv),
        max_queue=_parse_max_queue(argv),
        default_exec=_parse_default_exec(argv),
        telemetry_out=Path(telemetry_out) if telemetry_out else None,
    )


async def _run(config: ServeConfig, argv) -> int:
    service = VerificationService(config)
    replayed = await service.start()
    if replayed:
        sys.stderr.write(f"repro.serve: replayed {replayed} journaled "
                         f"request(s)\n")
    port = _parse_port(argv)
    try:
        if port is not None:
            await serve_tcp(service, _flag_value(argv, "--host")
                            or "127.0.0.1", port)
        else:
            await serve_stdio(service)
    finally:
        await service.stop()
    return 0


def main(argv=None) -> int:
    argv = argv if argv is not None else sys.argv[1:]
    config = build_config(argv)
    if _parse_port(argv) is None and "--stdio" not in argv \
            and not any(a.startswith("--port") for a in argv):
        sys.stderr.write("repro.serve: no --port given; "
                         "serving stdio (pass --stdio to silence this)\n")
    return asyncio.run(_run(config, argv))


if __name__ == "__main__":
    raise SystemExit(main())
