"""Transports: line-delimited JSON over TCP or stdio.

One connection = one bidirectional stream of newline-terminated JSON
objects (the wire format of :mod:`repro.serve.protocol`).  Each
connection gets a private *outbox* queue; exactly one writer task drains
it to the socket/stdout, so concurrent request streams never interleave
mid-line.  The read loop dispatches operations:

``submit``    admit a request; replies ``accepted`` (or ``error``), then
              streams the request's ``event`` messages and its terminal
              ``result``.
``wait``      reply with the ``result`` of an id once it exists (runs as
              its own task so a long wait never blocks further reads).
``status``    lane/tenant/queue snapshot.
``ping``      liveness (echoes ``payload``).
``shutdown``  ask the daemon to exit (graceful: running work drains).

The stdio transport serves exactly one client over stdin/stdout --
useful under test harnesses and as a subprocess backend for the thin
client (:mod:`repro.serve.client`).  stdin is read on a helper thread
(asyncio has no portable non-blocking stdin) and bridged into the loop.
"""

from __future__ import annotations

import asyncio
import os
import sys
import threading
from typing import Optional

from .protocol import ProtocolError, decode_line, encode_message
from .service import VerificationService

__all__ = ["serve_tcp", "serve_stdio", "handle_message"]


async def handle_message(service: VerificationService, message: dict,
                         outbox: asyncio.Queue) -> None:
    """Dispatch one decoded client message; replies go to ``outbox``."""
    op = message["op"]
    try:
        if op == "ping":
            outbox.put_nowait({"reply": "pong",
                               "payload": message.get("payload")})
        elif op == "status":
            outbox.put_nowait(service.status())
        elif op == "submit":
            outbox.put_nowait(await service.submit(message, outbox))
        elif op == "wait":
            request_id = message.get("id")
            if not isinstance(request_id, str):
                raise ProtocolError("bad_request",
                                    "wait needs a string 'id'")

            async def _waiter(rid=request_id):
                try:
                    outbox.put_nowait(await service.wait(rid))
                except ProtocolError as exc:
                    outbox.put_nowait(exc.to_message())

            asyncio.ensure_future(_waiter())
        elif op == "shutdown":
            outbox.put_nowait({"reply": "bye"})
            service.request_shutdown()
    except ProtocolError as exc:
        outbox.put_nowait(exc.to_message())


async def _read_dispatch(service: VerificationService, readline,
                         outbox: asyncio.Queue) -> None:
    """The per-connection read loop: decode, dispatch, keep going.
    Malformed lines produce an ``error`` reply instead of killing the
    connection."""
    while True:
        line = await readline()
        if not line:
            return
        if not line.strip():
            continue
        try:
            message = decode_line(line)
        except ProtocolError as exc:
            outbox.put_nowait(exc.to_message())
            continue
        await handle_message(service, message, outbox)


async def _drain_outbox(outbox: asyncio.Queue, write) -> None:
    """The per-connection writer: the sole producer of output bytes."""
    while True:
        message = await outbox.get()
        if message is None:
            return
        await write(encode_message(message).encode("utf-8"))


# ---------------------------------------------------------------------------
# TCP
# ---------------------------------------------------------------------------

async def serve_tcp(service: VerificationService, host: str,
                    port: int) -> None:
    """Serve until :attr:`~VerificationService.shutdown_requested`.
    Announces the bound port as a ``listening`` message on stdout so a
    parent process can connect without racing (``--port 0`` binds an
    ephemeral port)."""

    async def handle_connection(reader: asyncio.StreamReader,
                                writer: asyncio.StreamWriter) -> None:
        outbox: asyncio.Queue = asyncio.Queue()

        async def write(data: bytes) -> None:
            writer.write(data)
            await writer.drain()

        drain = asyncio.ensure_future(_drain_outbox(outbox, write))
        try:
            await _read_dispatch(service, reader.readline, outbox)
        except asyncio.CancelledError:
            pass   # server closing while the client is still connected
        finally:
            outbox.put_nowait(None)
            try:
                await drain
            except asyncio.CancelledError:
                drain.cancel()
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError, asyncio.CancelledError):
                pass

    server = await asyncio.start_server(handle_connection, host, port)
    bound = server.sockets[0].getsockname()[1]
    sys.stdout.write(encode_message(
        {"reply": "listening", "host": host, "port": bound}))
    sys.stdout.flush()
    async with server:
        await service.shutdown_requested.wait()


# ---------------------------------------------------------------------------
# stdio
# ---------------------------------------------------------------------------

async def serve_stdio(service: VerificationService,
                      stdin=None, stdout=None) -> None:
    """Serve one client over stdin/stdout until EOF or ``shutdown``."""
    stdin = stdin if stdin is not None else sys.stdin.buffer
    stdout = stdout if stdout is not None else sys.stdout.buffer
    loop = asyncio.get_running_loop()
    lines: asyncio.Queue = asyncio.Queue()

    def pump() -> None:
        # Blocking stdin reads belong on a thread; EOF posts a sentinel.
        # Read the raw fd, not the BufferedReader: a daemon thread parked
        # inside a buffered read holds the buffer lock, and interpreter
        # shutdown aborts the whole process on it (_enter_buffered_busy).
        try:
            fd = stdin.fileno()
        except (AttributeError, OSError):
            fd = None
        buffer = b""
        while True:
            try:
                chunk = os.read(fd, 65536) if fd is not None \
                    else stdin.readline()
            except (OSError, ValueError):
                break
            if not chunk:
                break
            buffer += chunk
            while b"\n" in buffer:
                line, buffer = buffer.split(b"\n", 1)
                loop.call_soon_threadsafe(lines.put_nowait, line + b"\n")
        if buffer:
            loop.call_soon_threadsafe(lines.put_nowait, buffer)
        loop.call_soon_threadsafe(lines.put_nowait, b"")

    reader = threading.Thread(target=pump, name="serve-stdin", daemon=True)
    reader.start()

    async def readline() -> bytes:
        return await lines.get()

    async def write(data: bytes) -> None:
        stdout.write(data)
        stdout.flush()

    outbox: asyncio.Queue = asyncio.Queue()
    drain = asyncio.ensure_future(_drain_outbox(outbox, write))

    async def read_loop() -> None:
        await _read_dispatch(service, readline, outbox)
        service.request_shutdown()

    reading = asyncio.ensure_future(read_loop())
    await service.shutdown_requested.wait()
    reading.cancel()
    outbox.put_nowait(None)
    await drain
