"""A thin synchronous client for the verification daemon.

Talks the line-delimited JSON protocol over either a spawned stdio
daemon subprocess (:meth:`ServeClient.spawn` -- the mode the tests and
the CI smoke step use) or a TCP connection (:meth:`ServeClient.connect`).
A reader thread parses every incoming line and files it: ``event``
messages accumulate per request id (``events_for``), terminal ``result``
messages resolve ``wait``, and everything else (``accepted``, ``pong``,
``status``, ``error``, ...) lands in a reply queue consumed by the
request methods.  The client is deliberately dumb -- no retries, no
reconnects -- because its job is to exercise the daemon's guarantees,
not to mask them.
"""

from __future__ import annotations

import json
import os
import queue
import socket
import subprocess
import sys
import threading
from typing import Dict, List, Optional

from ..protocol import PROTOCOL_VERSION

__all__ = ["ServeClient", "ClientError"]

_REPLY_KINDS = ("accepted", "pong", "status", "error", "bye", "listening")


class ClientError(Exception):
    """The daemon replied with an ``error`` message (the protocol code
    and detail are in the message)."""

    def __init__(self, message: dict):
        detail = message.get("detail") or message.get("code") or "error"
        super().__init__(f"{message.get('code', 'error')}: {detail}")
        self.message = message


class ServeClient:
    """One connection to a running daemon.  Not thread-safe: issue
    requests from one thread (the internal reader thread is private)."""

    def __init__(self, send_line, close_transport,
                 process: Optional[subprocess.Popen] = None,
                 readable=None):
        self._send_line = send_line
        self._close_transport = close_transport
        self.process = process
        self._replies: "queue.Queue[dict]" = queue.Queue()
        self._events: Dict[str, List[dict]] = {}
        self._results: Dict[str, dict] = {}
        self._errors: Dict[str, dict] = {}
        self._result_ready = threading.Condition()
        self._closed = False
        self._reader = threading.Thread(target=self._read_loop,
                                        args=(readable,),
                                        name="serve-client-reader",
                                        daemon=True)
        self._reader.start()

    # -- construction --------------------------------------------------------

    @classmethod
    def spawn(cls, *daemon_args: str,
              python: Optional[str] = None) -> "ServeClient":
        """Launch ``python -m repro.serve --stdio <daemon_args>`` as a
        subprocess and connect to it."""
        src_dir = os.path.dirname(os.path.dirname(os.path.dirname(
            os.path.abspath(__file__))))
        env = dict(os.environ)
        env["PYTHONPATH"] = src_dir + (
            os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else "")
        process = subprocess.Popen(
            [python or sys.executable, "-m", "repro.serve", "--stdio",
             *daemon_args],
            stdin=subprocess.PIPE, stdout=subprocess.PIPE, env=env)

        def send_line(data: bytes) -> None:
            process.stdin.write(data)
            process.stdin.flush()

        def close_transport() -> None:
            try:
                process.stdin.close()
            except (BrokenPipeError, OSError):
                pass

        return cls(send_line, close_transport, process=process,
                   readable=process.stdout)

    @classmethod
    def connect(cls, host: str, port: int,
                timeout: float = 10.0) -> "ServeClient":
        """Connect to a TCP daemon."""
        sock = socket.create_connection((host, port), timeout=timeout)
        sock.settimeout(None)
        writable = sock.makefile("wb")
        readable = sock.makefile("rb")

        def send_line(data: bytes) -> None:
            writable.write(data)
            writable.flush()

        def close_transport() -> None:
            try:
                writable.close()
            except (BrokenPipeError, OSError):
                pass
            sock.close()

        return cls(send_line, close_transport, readable=readable)

    # -- the reader thread ---------------------------------------------------

    def _read_loop(self, readable) -> None:
        # The closed flag is set on *any* exit -- clean end-of-stream or a
        # transport exception -- inside the finally: a waiter must never
        # sit out its full timeout against a reader that is already dead.
        try:
            for raw in readable:
                try:
                    message = json.loads(raw.decode("utf-8"))
                except ValueError:
                    continue   # sub-daemon noise on a shared stream
                if not isinstance(message, dict):
                    continue
                reply = message.get("reply")
                if reply == "event":
                    self._events.setdefault(message.get("id", "?"),
                                            []).append(message["event"])
                elif reply == "result":
                    with self._result_ready:
                        self._results[message["id"]] = message
                        self._result_ready.notify_all()
                elif reply == "error" and \
                        message.get("code") == "unknown_id":
                    # A failed ``wait`` resolves the waiter, not the reply
                    # queue (nothing is blocked on _replies for it).
                    with self._result_ready:
                        self._errors[message.get("id", "?")] = message
                        self._result_ready.notify_all()
                elif reply in _REPLY_KINDS:
                    self._replies.put(message)
        except (OSError, ValueError):
            pass   # transport died underneath us; the finally resolves
                   # every waiter instead of a thread traceback
        finally:
            with self._result_ready:
                self._closed = True
                self._result_ready.notify_all()

    # -- requests ------------------------------------------------------------

    def _send(self, message: dict) -> None:
        message.setdefault("protocol", PROTOCOL_VERSION)
        self._send_line(json.dumps(message, separators=(",", ":"))
                        .encode("utf-8") + b"\n")

    def _reply(self, timeout: float) -> dict:
        try:
            message = self._replies.get(timeout=timeout)
        except queue.Empty:
            raise TimeoutError("no reply from daemon") from None
        if message.get("reply") == "error":
            raise ClientError(message)
        return message

    def ping(self, payload=None, timeout: float = 10.0) -> dict:
        self._send({"op": "ping", "payload": payload})
        return self._reply(timeout)

    def status(self, timeout: float = 10.0) -> dict:
        self._send({"op": "status"})
        return self._reply(timeout)

    def submit(self, *, kind: str, package: dict,
               namespace: str = "public",
               subprograms: Optional[List[str]] = None,
               lane: Optional[str] = None, scripts: bool = True,
               exec: Optional[dict] = None, params: Optional[dict] = None,
               id: Optional[str] = None, timeout: float = 30.0) -> dict:
        """Submit a request; returns the ``accepted`` reply (raises
        :class:`ClientError` on rejection -- bad request, duplicate id,
        backpressure)."""
        message = {"op": "submit", "kind": kind, "package": package,
                   "namespace": namespace, "scripts": scripts}
        if subprograms is not None:
            message["subprograms"] = subprograms
        if lane is not None:
            message["lane"] = lane
        if exec is not None:
            message["exec"] = exec
        if params is not None:
            message["params"] = params
        if id is not None:
            message["id"] = id
        self._send(message)
        return self._reply(timeout)

    def wait(self, request_id: str,
             timeout: Optional[float] = 300.0) -> dict:
        """Block until the request's terminal ``result`` message.
        ``timeout=None`` blocks forever (until the result arrives or the
        connection dies)."""
        with self._result_ready:
            if request_id not in self._results:
                try:
                    self._send({"op": "wait", "id": request_id})
                except (BrokenPipeError, OSError, ValueError):
                    pass   # transport already dead: the reader's exit
                           # (below) resolves this wait as closed
            ok = self._result_ready.wait_for(
                lambda: request_id in self._results
                or request_id in self._errors or self._closed,
                timeout=timeout)
            if request_id in self._results:
                return self._results[request_id]
            if request_id in self._errors:
                raise ClientError(self._errors.pop(request_id))
            if not ok:
                raise TimeoutError(f"no result for {request_id!r} "
                                   f"within {timeout}s")
        # Stream closed without the result: surface any queued error.
        try:
            message = self._replies.get_nowait()
        except queue.Empty:
            raise ClientError({"code": "connection_closed",
                               "detail": f"stream ended before result "
                                         f"for {request_id!r}"}) from None
        if message.get("reply") == "error":
            raise ClientError(message)
        raise ClientError({"code": "connection_closed",
                           "detail": f"stream ended before result "
                                     f"for {request_id!r}"})

    def events_for(self, request_id: str) -> List[dict]:
        """The ``event`` stream received so far for a request id."""
        return list(self._events.get(request_id, []))

    def shutdown(self, timeout: float = 10.0) -> None:
        """Ask the daemon to exit gracefully (drains running work)."""
        try:
            self._send({"op": "shutdown"})
        except (BrokenPipeError, OSError):
            return
        try:
            self._reply(timeout)
        except (TimeoutError, ClientError):
            pass

    def close(self, timeout: float = 30.0) -> None:
        self._close_transport()
        if self.process is not None:
            try:
                self.process.wait(timeout=timeout)
            except subprocess.TimeoutExpired:
                self.process.kill()
                self.process.wait()
        self._reader.join(timeout=5.0)
