"""The shared wire-protocol surface: versioning, framing, error codes.

Two subsystems speak line-delimited JSON over a byte stream: the serve
daemon (``repro.serve``, client-facing) and the proof farm
(``repro.exec.remote``, coordinator ↔ worker).  Both frame one JSON
object per ``\\n``-terminated line and both need the same three
primitives, factored here so the schema constants cannot drift apart:

* an explicit **protocol version** (:data:`PROTOCOL_VERSION`) that every
  peer advertises and validates -- a serve client may omit it (older
  clients predate the field) but a remote worker must send it, because a
  version-skewed worker computing verdicts silently is far worse than a
  stale dashboard;
* a shared **error envelope** (:class:`ProtocolError` rendering to
  ``{"reply": "error", "code": ..., "detail": ...}``) with the error-code
  vocabulary in :data:`ERROR_CODES`;
* **framing helpers** (:func:`encode_message`, :func:`parse_json_line`)
  enforcing the one-object-per-line, bounded-size discipline.

The serve-specific schema (ops, lanes, request kinds, submit
normalization) stays in :mod:`repro.serve.protocol`, which re-exports
everything here for backward compatibility.
"""

from __future__ import annotations

import json
from typing import Any, Dict, Optional

__all__ = [
    "PROTOCOL_VERSION", "ERROR_CODES", "MAX_LINE_BYTES", "ProtocolError",
    "encode_message", "parse_json_line", "check_protocol_version",
]

#: The wire-protocol generation.  Version 1 was the PR-6 serve protocol
#: (no version field on the wire); version 2 added the explicit
#: ``protocol`` field and the remote-worker handshake that requires it;
#: version 3 adds the batched lease generation (``lease_batch`` /
#: ``result_batch``, DESIGN.md §18).  A version-2 worker cannot decode a
#: ``lease_batch``, so the handshake must reject it -- bumping here is
#: what turns that skew into a loud ``protocol_mismatch`` instead of a
#: silently stalled batch.
PROTOCOL_VERSION = 3

#: The machine-readable ``code`` vocabulary of ``error`` replies, shared
#: by the serve daemon and the farm coordinator.  ``protocol_mismatch``
#: rejects a version-skewed peer; ``quarantined`` rejects a flapping
#: farm worker's re-registration.
ERROR_CODES = ("bad_request", "backpressure", "duplicate_id",
               "unknown_id", "protocol_mismatch", "quarantined")

#: Upper bound on one wire line.  An inline MiniAda package or a
#: base64-pickled obligation payload fits easily.
MAX_LINE_BYTES = 8 * 1024 * 1024


class ProtocolError(Exception):
    """A peer-visible protocol failure, rendered as an ``error`` reply."""

    def __init__(self, code: str, detail: str,
                 request_id: Optional[str] = None):
        assert code in ERROR_CODES, code
        super().__init__(f"{code}: {detail}")
        self.code = code
        self.detail = detail
        self.request_id = request_id

    def to_message(self) -> dict:
        msg = {"reply": "error", "code": self.code, "detail": self.detail}
        if self.request_id is not None:
            msg["id"] = self.request_id
        return msg


def encode_message(message: Dict[str, Any]) -> str:
    """One wire line (newline-terminated, newline-free payload)."""
    return json.dumps(message, separators=(",", ":"),
                      ensure_ascii=True) + "\n"


def parse_json_line(line: str,
                    max_bytes: int = MAX_LINE_BYTES) -> dict:
    """Parse one wire line into a message dict, or raise
    :class:`ProtocolError` (oversize, non-JSON, non-object).  Schema
    validation beyond "it is a JSON object" is the caller's."""
    if len(line) > max_bytes:
        raise ProtocolError("bad_request",
                            f"line exceeds {max_bytes} bytes")
    try:
        message = json.loads(line)
    except ValueError:
        raise ProtocolError("bad_request", "line is not valid JSON")
    if not isinstance(message, dict):
        raise ProtocolError("bad_request",
                            f"expected a JSON object, got "
                            f"{type(message).__name__}")
    return message


def check_protocol_version(value: Any, *, surface: str,
                           required: bool = False) -> None:
    """Validate a peer's advertised ``protocol`` field against
    :data:`PROTOCOL_VERSION`.

    ``value`` is the field as received (``None`` when absent).  Serve
    clients may omit it (``required=False``: version-1 clients predate
    the field); the remote-worker handshake must send it
    (``required=True``).  A present-but-wrong version always raises --
    loudly, with both versions named -- because silently mixing protocol
    generations is exactly the failure this field exists to prevent.
    """
    if value is None:
        if required:
            raise ProtocolError(
                "protocol_mismatch",
                f"{surface}: peer did not advertise a protocol version "
                f"(this side speaks version {PROTOCOL_VERSION})")
        return
    if value != PROTOCOL_VERSION:
        raise ProtocolError(
            "protocol_mismatch",
            f"{surface}: peer speaks protocol version {value!r}, "
            f"this side speaks {PROTOCOL_VERSION}")
